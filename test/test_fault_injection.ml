(* Exception-safety of the engine, proven by systematic fault
   injection.

   The paper's transition model assumes operation blocks "are executed
   indivisibly" (Section 2.1) and that rollback restores the exact
   transaction-start state (Section 4).  The engine must therefore
   recover to a well-defined state when an error — genuine or injected
   — is raised at ANY point of execution: mid-block, during a rule
   condition, inside a rule action or external procedure, or at commit.

   Layers of this suite:

   - regression tests for concrete atomicity bugs (partial blocks left
     behind by [submit_ops], select effects missing from
     [Effect.cardinality], the off-by-one step-limit report, the stale
     [trans_start] after rollback);

   - unit tests for the [Fault] countdown module itself;

   - the systematic differential harness: seeded random transaction
     workloads driving a rule set that inserts, deletes, updates,
     selects, calls an external procedure and rolls back.  Each
     transaction is executed once on a fault-free system and, on a
     second system, re-attempted with a fault injected at hit point
     1, 2, ... until an attempt runs fault-free.  After every induced
     abort the harness asserts

       (a) the engine state is physically the pre-transaction snapshot
           (database, transition start, no open transaction),
       (b) the final fault-free retry produces the outcome, select
           results and firing trace of the clean system, with
           identical final states at the end of the workload,
       (c) the abort is observable: an [Ev_abort] trace event and the
           [aborts] statistic.

     The harness runs under the default configuration and, as a qcheck
     property, across the prune_info x optimize x track_selects
     configuration matrix.  Global counters prove the run was not
     vacuous: >= 500 transactions driven and every injection site
     actually faulted at least once. *)

open Core
open Helpers

let parse_ops sql =
  List.map
    (function
      | Ast.Stmt_op op -> op
      | _ -> Alcotest.fail "expected DML statements")
    (Parser.parse_script sql)

(* Every test that arms the fault module must return it to its pristine
   state on ANY exit.  [Fault.reset] (not just [enable false]) matters:
   the countdown is process-global, so a test aborted between [arm] and
   the fault — an alcotest failure, an interrupted qcheck shrink run —
   would otherwise leak an armed countdown into the next test (see the
   leak-regression test below). *)
let with_faults f =
  Fun.protect ~finally:Fault.reset f

(* ------------------------------------------------------------------ *)
(* Regression: a failing operation mid-block must not leave the        *)
(* earlier operations' mutations behind (Section 2.1 indivisibility).  *)

let test_partial_block_restored () =
  let s = system "create table t (a int, b int)" in
  let eng = System.engine s in
  Engine.begin_txn eng;
  ignore (Engine.submit_ops eng (parse_ops "insert into t values (1, 2)"));
  (* first op succeeds, second raises an arity error: the whole block
     must be undone while the transaction stays open *)
  expect_error (fun () ->
      Engine.submit_ops eng
        (parse_ops "insert into t values (3, 4); insert into t values (5)"));
  Alcotest.(check bool) "transaction still open" true (Engine.in_transaction eng);
  ignore (Engine.commit eng);
  Alcotest.(check int) "only the successful block committed" 1
    (int_cell s "select count(*) from t");
  Alcotest.(check int) "the partial insert did not survive" 0
    (int_cell s "select count(*) from t where a = 3")

(* The same indivisibility, driven through the SQL front-end the way
   the REPL submits statements. *)
let test_failed_statement_has_no_effect () =
  let s = system "create table t (a int, b int)" in
  run s "begin";
  run s "insert into t values (1, 1)";
  (* one statement = one block; the arity error in the second tuple
     must undo the first tuple too *)
  expect_error (fun () -> System.exec s "insert into t values (2, 2), (9)");
  Alcotest.(check bool) "still in transaction" true
    (Engine.in_transaction (System.engine s));
  run s "insert into t values (3, 3)";
  run s "commit";
  Alcotest.check rows_testable "exactly the successful statements"
    [ [| vi 1 |]; [| vi 3 |] ]
    (rows s "select a from t order by a")

(* ------------------------------------------------------------------ *)
(* Regression: the S component counts in effect sizes.                 *)

let test_select_effect_counted () =
  let schema =
    Schema.table "t" [ Schema.column "a" Schema.T_int; Schema.column "b" Schema.T_int ]
  in
  let db = Database.create_table Database.empty schema in
  let _, h = Database.insert db "t" [| vi 1; vi 2 |] in
  Alcotest.(check int) "sel-only effect has cardinality" 1
    (Effect.cardinality (Effect.of_selected [ (h, [ "a" ]) ]));
  (* and through the engine trace: with select tracking on, the
     external transition's effect_size reflects the rows read *)
  let config = { Engine.default_config with track_selects = true } in
  let s = system ~config "create table t (a int, b int)" in
  run s "insert into t values (1, 10), (2, 20)";
  Engine.set_tracing (System.engine s) true;
  run s "begin; select a from t; commit";
  let sizes =
    List.filter_map
      (function Engine.Ev_external { effect_size } -> Some effect_size | _ -> None)
      (Engine.trace (System.engine s))
  in
  Alcotest.(check (list int)) "read set counted in effect_size" [ 2 ] sizes

(* ------------------------------------------------------------------ *)
(* Regression: the step-limit error reports the action number that     *)
(* tripped the limit, and the abort is observable.                     *)

let test_limit_reports_true_count () =
  let config = { Engine.default_config with max_steps = 2 } in
  let s = system ~config "create table t (a int, b int)" in
  let eng = System.engine s in
  run s "create rule forever when inserted into t or updated t.b then update \
         t set b = b + 1";
  Engine.set_tracing eng true;
  (match System.exec s "insert into t values (1, 0)" with
  | _ -> Alcotest.fail "expected the step limit to trip"
  | exception Errors.Error (Errors.Rule_limit_exceeded { steps; rule }) ->
    Alcotest.(check int) "attempted action count" 3 steps;
    Alcotest.(check string) "offending rule" "forever" rule);
  Alcotest.(check int) "state restored" 0 (int_cell s "select count(*) from t");
  Alcotest.(check bool) "transaction closed" false (Engine.in_transaction eng);
  Alcotest.(check int) "abort counted" 1 (Engine.stats eng).Engine.aborts;
  (match List.rev (Engine.trace eng) with
  | Engine.Ev_abort _ :: _ -> ()
  | _ -> Alcotest.fail "expected the trace to end with an abort event")

(* ------------------------------------------------------------------ *)
(* Regression: rollback resets the transition-start snapshot.          *)

let test_trans_start_reset_on_rollback () =
  let s = system "create table t (a int, b int)" in
  let eng = System.engine s in
  run s "insert into t values (1, 1)";
  let db0 = Engine.database eng in
  Engine.begin_txn eng;
  ignore (Engine.submit_ops eng (parse_ops "insert into t values (2, 2)"));
  (* the triggering point starts a new transition: trans_start now
     names a mid-transaction state *)
  ignore (Engine.process_rules eng);
  ignore (Engine.submit_ops eng (parse_ops "insert into t values (3, 3)"));
  Engine.rollback_txn eng;
  Alcotest.(check bool) "database restored" true (Engine.database eng == db0);
  Alcotest.(check bool) "transition start not a discarded snapshot" true
    (Engine.transition_start eng == db0)

(* ------------------------------------------------------------------ *)
(* The Fault module's countdown semantics.                             *)

let test_fault_module () =
  with_faults (fun () ->
      Fault.enable false;
      (* disabled: hits are no-ops *)
      Fault.hit Fault.Dml_op;
      Alcotest.(check int) "disabled hit not counted" 0 (Fault.observed_hits ());
      Fault.arm 3;
      Fault.hit Fault.Dml_op;
      Fault.hit Fault.Rule_condition;
      (match Fault.hit Fault.Rule_action with
      | _ -> Alcotest.fail "third hit must fault"
      | exception Fault.Injected Fault.Rule_action -> ()
      | exception Fault.Injected _ -> Alcotest.fail "faulted at the wrong site");
      Alcotest.(check bool) "site recorded" true
        (Fault.injected () = Some Fault.Rule_action);
      (* after firing, the module only counts *)
      Fault.hit Fault.Dml_op;
      Alcotest.(check int) "counting continues" 4 (Fault.observed_hits ()))

(* A single armed fault through the public API: the abort restores the
   exact pre-transaction state and is observable. *)
let test_single_fault_aborts_cleanly () =
  with_faults (fun () ->
      let s = system "create table t (a int, b int)" in
      let eng = System.engine s in
      run s "insert into t values (1, 1)";
      Engine.set_tracing eng true;
      let db0 = Engine.database eng in
      Fault.arm 1;
      (match System.exec s "insert into t values (2, 2)" with
      | _ -> Alcotest.fail "expected the injected fault to escape"
      | exception Fault.Injected Fault.Dml_op -> ()
      | exception Fault.Injected _ -> Alcotest.fail "unexpected site");
      Fault.disarm ();
      Alcotest.(check bool) "exact pre-transaction state" true
        (Engine.database eng == db0);
      Alcotest.(check bool) "transaction closed" false (Engine.in_transaction eng);
      Alcotest.(check int) "abort counted" 1 (Engine.stats eng).Engine.aborts;
      (match List.rev (Engine.trace eng) with
      | Engine.Ev_abort { reason } :: _ ->
        Alcotest.(check bool) "reason names the site" true
          (String.length reason > 0)
      | _ -> Alcotest.fail "expected an abort event");
      (* the retry behaves as if nothing happened *)
      run s "insert into t values (2, 2)";
      Alcotest.(check int) "retry applied" 2 (int_cell s "select count(*) from t"))

(* A fault inside an open interactive transaction: the failed statement
   has no effect, the transaction survives, and the retry commits. *)
let test_fault_mid_transaction_keeps_it_open () =
  with_faults (fun () ->
      let s = system "create table t (a int, b int)" in
      let eng = System.engine s in
      run s "begin";
      run s "insert into t values (1, 1)";
      let mid = Engine.database eng in
      Fault.arm 1;
      (match System.exec s "insert into t values (2, 2)" with
      | _ -> Alcotest.fail "expected the injected fault to escape"
      | exception Fault.Injected _ -> ());
      Fault.disarm ();
      Alcotest.(check bool) "transaction still open" true
        (Engine.in_transaction eng);
      Alcotest.(check bool) "block had no effect" true
        (Engine.database eng == mid);
      run s "insert into t values (2, 2)";
      run s "commit";
      Alcotest.(check int) "both rows committed" 2
        (int_cell s "select count(*) from t"))

(* ------------------------------------------------------------------ *)
(* The systematic differential harness                                 *)

(* Non-vacuity counters, asserted by the final test of the suite. *)
let txns_driven = ref 0
let faults_injected = ref 0
let injected_at : (Fault.site, int) Hashtbl.t = Hashtbl.create 8

let note_injection site =
  incr faults_injected;
  Hashtbl.replace injected_at site
    (1 + Option.value (Hashtbl.find_opt injected_at site) ~default:0)

let schema_sql =
  "create table t (a int, b int);\n\
   create table u (a int, c int);\n\
   create table log (n int)"

(* A terminating rule set exercising every trigger kind and every
   action shape (literal blocks, rollback, an external procedure), so
   injected faults land in conditions, actions and procedure calls as
   well as in externally-generated operations. *)
let rules_sql =
  [
    "create rule r1 when inserted into t if exists (select * from inserted t \
     where a = 3) then insert into u values (3, 0)";
    "create rule r2 when deleted from t then delete from u where a in \
     (select a from deleted t)";
    "create rule r3 when updated t.a if (select count(*) from new updated \
     t.a where a = 5) > 0 then update u set c = c + 1 where a = 5";
    "create rule r4 when inserted into u or deleted from u or updated u.c \
     if (select count(*) from u where a = 99) > 3 then delete from u where \
     a = 99";
    "create rule r5 when updated t.b if (select count(*) from new updated \
     t.b where b > 100) > 0 then rollback";
    "create rule r6 when inserted into u then call note_u";
    "create rule r7 when selected t.b then insert into log values (0 - 1)";
  ]

(* The external procedure reads the current state through the engine
   (a [Query_eval] site) and returns a deterministic operation block. *)
let note_u_proc ctx =
  let rel =
    ctx.Procedures.query (Parser.parse_select_string "select count(*) from u")
  in
  let n =
    match rel.Eval.rows with [ [| Value.Int n |] ] -> n | _ -> 0
  in
  parse_ops (Printf.sprintf "insert into log values (%d)" n)

let gen_small st = QCheck.Gen.int_bound 12 st

let gen_term st =
  let open QCheck.Gen in
  if int_bound 9 st = 0 then "null" else string_of_int (gen_small st)

(* One operation as SQL: inserts, deletes, updates and selects over
   both tables, occasionally big enough to trip the rollback rule r5,
   and rarely a genuinely erroneous statement (wrong arity) so genuine
   errors and injected faults mix. *)
let gen_op st =
  let open QCheck.Gen in
  match int_bound 13 st with
  | 0 | 1 ->
    Printf.sprintf "insert into t values (%s, %s)" (gen_term st) (gen_term st)
  | 2 | 3 ->
    Printf.sprintf "insert into u values (%s, %s)" (gen_term st) (gen_term st)
  | 4 -> Printf.sprintf "delete from t where a = %s" (gen_term st)
  | 5 ->
    Printf.sprintf "delete from u where a in (%d, %d)" (gen_small st)
      (gen_small st)
  | 6 -> Printf.sprintf "update t set b = b + 1 where a = %d" (gen_small st)
  | 7 ->
    Printf.sprintf "update t set a = %d where a = %d" (gen_small st)
      (gen_small st)
  | 8 ->
    Printf.sprintf
      "update u set c = c + 1 where a in (select a from t where b = %d)"
      (gen_small st)
  | 9 -> Printf.sprintf "select a, b from t where a = %s" (gen_term st)
  | 10 -> Printf.sprintf "select b from t where b = %d" (gen_small st)
  | 11 ->
    (* occasionally large enough to trip the rollback rule r5 *)
    Printf.sprintf "update t set b = %d where a = %d"
      (if int_bound 3 st = 0 then 200 else gen_small st)
      (gen_small st)
  | 12 ->
    Printf.sprintf "insert into u values (99, %d); insert into u values \
                    (99, %d)" (gen_small st) (gen_small st)
  | _ ->
    (* a genuine error: wrong arity, raised mid-block *)
    Printf.sprintf "insert into t values (%d, %d, %d)" (gen_small st)
      (gen_small st) (gen_small st)

let gen_block st =
  let open QCheck.Gen in
  let n = 1 + int_bound 3 st in
  String.concat "; " (List.init n (fun _ -> gen_op st))

let make_system ~config () =
  let s = system ~config schema_sql in
  System.register_procedure s "note_u" note_u_proc;
  List.iter (run s) rules_sql;
  Engine.set_tracing (System.engine s) true;
  s

(* Execute one block and normalize everything observable about it:
   outcome or genuine-error string, and the produced select results. *)
let run_block s sql =
  match System.exec_block s sql with
  | outcome, rels ->
    Ok
      ( outcome,
        List.map (fun r -> (Array.to_list r.Eval.cols, r.Eval.rows)) rels )
  | exception Errors.Error e -> Error (Errors.to_string e)

let check_same_relation label (cols_a, rows_a) (cols_b, rows_b) =
  Alcotest.(check (list string)) (label ^ " cols") cols_a cols_b;
  Alcotest.check rows_testable (label ^ " rows") rows_a rows_b

let check_same_result label a b =
  match a, b with
  | Error ea, Error eb -> Alcotest.(check string) (label ^ " error") ea eb
  | Ok (oa, ra), Ok (ob, rb) ->
    Alcotest.(check bool)
      (label ^ " outcome") true
      (oa = ob && List.length ra = List.length rb);
    List.iter2 (fun x y -> check_same_relation label x y) ra rb
  | _ ->
    Alcotest.failf "%s: one side errored and the other did not" label

let harness_tables = [ "t"; "u"; "log" ]

(* Drive one transaction on the faulted system: inject at hit point 1,
   2, ... (checking the abort invariants after each induced fault)
   until an attempt completes without injection, and return that
   fault-free result. *)
let run_with_systematic_faults s block =
  let eng = System.engine s in
  let rec attempt k =
    let pre_db = System.database s in
    let aborts0 = (Engine.stats eng).Engine.aborts in
    Fault.arm k;
    match run_block s block with
    | result ->
      Fault.disarm ();
      result
    | exception Fault.Injected site ->
      Fault.disarm ();
      note_injection site;
      (* invariant (a): the exact pre-transaction snapshot — physical
         equality, the strongest form of bit-for-bit *)
      Alcotest.(check bool)
        (Printf.sprintf "abort at %s restored the exact state"
           (Fault.site_name site))
        true
        (System.database s == pre_db);
      Alcotest.(check bool) "abort closed the transaction" false
        (Engine.in_transaction eng);
      Alcotest.(check bool) "transition start restored" true
        (Engine.transition_start eng == pre_db);
      (* invariant (c): the abort is observable *)
      Alcotest.(check int) "abort counted in stats" (aborts0 + 1)
        (Engine.stats eng).Engine.aborts;
      (match List.rev (Engine.trace eng) with
      | Engine.Ev_abort _ :: _ -> ()
      | _ -> Alcotest.fail "expected the trace to end with an abort event");
      attempt (k + 1)
  in
  attempt 1

(* Run [blocks] on a clean system and on a systematically-faulted one,
   checking invariant (b): identical per-transaction results and firing
   traces, identical final states. *)
let differential ~config blocks =
  with_faults (fun () ->
      let s_clean = make_system ~config () in
      let s_faulty = make_system ~config () in
      List.iter
        (fun block ->
          incr txns_driven;
          Fault.disarm ();
          let r_clean = run_block s_clean block in
          let r_faulty = run_with_systematic_faults s_faulty block in
          check_same_result "faulted-then-retried vs clean" r_clean r_faulty;
          let tr_clean = Engine.trace (System.engine s_clean) in
          let tr_faulty = Engine.trace (System.engine s_faulty) in
          Alcotest.(check bool) "identical firing traces" true
            (tr_clean = tr_faulty))
        blocks;
      List.iter
        (fun tbl ->
          let final s = Table.rows (Database.table (System.database s) tbl) in
          Alcotest.check rows_testable
            (Printf.sprintf "final state of %s" tbl)
            (final s_clean) (final s_faulty))
        harness_tables)

let harness_config = { Engine.default_config with max_steps = 300 }

(* The main run: seeded deterministic workloads under the default
   configuration, faults injected at every hit point of every
   transaction. *)
let test_systematic_differential () =
  List.iter
    (fun seed ->
      with_seed_reported seed (fun () ->
          let st = Random.State.make [| seed |] in
          let blocks = List.init 80 (fun _ -> gen_block st) in
          differential ~config:harness_config blocks))
    (seeds ~default:[ 7; 19; 23; 42 ])

(* Satellite: the same invariants as a qcheck property across the
   prune_info x optimize x track_selects configuration matrix. *)
let config_matrix =
  List.concat_map
    (fun prune_info ->
      List.concat_map
        (fun optimize ->
          List.map
            (fun track_selects -> (prune_info, optimize, track_selects))
            [ true; false ])
        [ true; false ])
    [ true; false ]

let arb_blocks =
  QCheck.make
    ~print:(fun blocks -> String.concat ";\n-- block --\n" blocks)
    QCheck.Gen.(list_size (int_range 6 10) gen_block)

let prop_matrix (prune_info, optimize, track_selects) =
  let label =
    Printf.sprintf "abort/retry invariants (prune=%b opt=%b sel=%b)" prune_info
      optimize track_selects
  in
  QCheck.Test.make ~name:label ~count:4 arb_blocks (fun blocks ->
      let config = { harness_config with prune_info; optimize; track_selects } in
      differential ~config blocks;
      true)

(* Non-vacuity: the harness drove enough work and actually injected at
   every site (runs after the tests above; Alcotest executes a suite in
   order). *)
let test_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf "enough transactions driven (%d)" !txns_driven)
    true
    (!txns_driven >= 500);
  Alcotest.(check bool)
    (Printf.sprintf "faults were injected (%d)" !faults_injected)
    true
    (!faults_injected > 0);
  List.iter
    (fun site ->
      let n = Option.value (Hashtbl.find_opt injected_at site) ~default:0 in
      Alcotest.(check bool)
        (Printf.sprintf "site %s was faulted (%d injections)"
           (Fault.site_name site) n)
        true (n > 0))
    (* this harness drives a purely in-memory workload, which never
       passes a WAL or checkpoint site; those are covered by the
       recovery suite's own coverage assertion *)
    Fault.engine_sites

(* Regression for the countdown-leak bug: a harness that armed the
   module and then died before its workload reached the fault used to
   leave the countdown armed for whatever ran next.  [with_faults]'s
   [Fault.reset] finalizer must fully disarm even when the body
   escapes with an exception. *)
let test_no_countdown_leak () =
  (try
     with_faults (fun () ->
         Fault.arm 1000;
         (* die before any hit consumes the countdown, as an aborted
            qcheck shrink run would *)
         failwith "harness died mid-run")
   with Failure _ -> ());
  (* a pristine module: hits are no-ops and nothing can fire *)
  Fault.hit Fault.Dml_op;
  Alcotest.(check int) "disabled after leak-prone exit" 0
    (Fault.observed_hits ());
  Alcotest.(check bool) "no pending injection" true (Fault.injected () = None);
  let s = system "create table leakcheck (a int)" in
  run s "insert into leakcheck values (1)";
  Alcotest.(check int) "workload unaffected" 1
    (int_cell s "select count(*) from leakcheck")

let suite =
  [
    Alcotest.test_case "partial block restored on error" `Quick
      test_partial_block_restored;
    Alcotest.test_case "failed statement has no effect" `Quick
      test_failed_statement_has_no_effect;
    Alcotest.test_case "select effects counted in sizes" `Quick
      test_select_effect_counted;
    Alcotest.test_case "step limit reports the true count" `Quick
      test_limit_reports_true_count;
    Alcotest.test_case "rollback resets transition start" `Quick
      test_trans_start_reset_on_rollback;
    Alcotest.test_case "fault module countdown" `Quick test_fault_module;
    Alcotest.test_case "single fault aborts cleanly" `Quick
      test_single_fault_aborts_cleanly;
    Alcotest.test_case "fault mid-transaction keeps it open" `Quick
      test_fault_mid_transaction_keeps_it_open;
    Alcotest.test_case "systematic differential (faults at every site)" `Slow
      test_systematic_differential;
  ]
  @ List.map (fun combo -> qtest (prop_matrix combo)) config_matrix
  @ [
      Alcotest.test_case "harness coverage" `Slow test_coverage;
      Alcotest.test_case "no armed-countdown leak on aborted harness" `Quick
        test_no_countdown_leak;
    ]

create table emp (name string, emp_no int, salary float);
insert into emp values ('ada', 1, 100.0), ('bob', 2, 200.0), ('cyd', 3, 300.0);
prepare by_no as select name, salary from emp where emp_no = ?;
prepare raise as update emp set salary = salary + ? where emp_no = ?;
prepare headcount as select count(*) from emp;
.prepared
execute by_no (1);
execute by_no (2);
execute raise (50.0, 1);
execute by_no (1);
execute headcount;
execute by_no (1, 2);
execute missing (1);
prepare by_no as select * from emp;
select * from emp where salary > ?;
explain select name from emp where emp_no = ?;
prepare bad as create table t2 (a int);
prepare bad as create rule r when inserted into emp then delete from emp where salary > ?;
explain select name from emp where emp_no = 5;
select name from emp where emp_no = 5;
explain select name from emp where emp_no = 5;
create index emp_no_ix on emp (emp_no);
explain select name from emp where emp_no = 5;
execute by_no (2);
execute by_no (2);
.stats
deallocate by_no;
execute by_no (2);
.prepared
deallocate all;
.prepared
deallocate missing;
.q

(* sopr — an interactive shell / script runner for the set-oriented
   production rules system.

   Usage:
     sopr                 start an interactive session
     sopr -f script.sql   execute a script, then exit
     sopr -f s.sql -i     execute a script, then go interactive
     sopr -e "sql"        execute one statement and exit

   Statements end with ';'.  Meta-commands in interactive mode (either
   '\' or '.' prefix):
     \q            quit
     \analyze      print the static rule analysis report
     \stats        print engine statistics
     \trace ...    rule-execution tracing (on/off/print/dump FILE)
     \clock ...    wall-clock timing for traces and the rule report
     \report       per-rule metrics report
     \help         this list *)

open Core

let print_error e = Printf.printf "error: %s\n%!" (Errors.to_string e)

(* Report an error together with what happened to the open transaction:
   the engine guarantees either the statement had no effect (block
   restored, transaction still open) or the whole transaction was
   aborted and its start state restored.  With a data directory open,
   execution routes through the durable layer so committed transitions
   are logged and automatic checkpoints can run. *)
let exec_and_print ?durable system sql =
  let was_in_txn = Engine.in_transaction (System.engine system) in
  let run_sql () =
    match durable with
    | Some d -> Durability.Durable.exec d sql
    | None -> System.exec system sql
  in
  match run_sql () with
  | results ->
    List.iter
      (fun r ->
        print_endline (System.render_result r))
      results
  | exception Errors.Error e ->
    print_error e;
    let in_txn = Engine.in_transaction (System.engine system) in
    if was_in_txn && not in_txn then
      print_endline "transaction aborted; all its effects were rolled back"
    else if in_txn then
      print_endline
        "the failed statement had no effect; the transaction is still open"

let print_stats system =
  let st = Engine.stats (System.engine system) in
  Printf.printf
    "transactions:          %d\n\
     transitions:           %d\n\
     rule firings:          %d\n\
     conditions evaluated:  %d\n\
     rollbacks:             %d\n\
     aborts:                %d\n\
     seq scans:             %d\n\
     index probes:          %d\n\
     range probes:          %d\n\
     hash join builds:      %d\n\
     hash join probes:      %d\n\
     candidates considered: %d\n\
     rules skipped:         %d\n\
     stmt cache hits:       %d\n\
     stmt cache misses:     %d\n\
     stmt invalidations:    %d\n"
    st.Engine.transactions st.Engine.transitions st.Engine.rule_firings
    st.Engine.conditions_evaluated st.Engine.rollbacks st.Engine.aborts
    st.Engine.seq_scans st.Engine.index_probes st.Engine.range_probes
    st.Engine.hash_join_builds st.Engine.hash_join_probes
    st.Engine.candidates_considered st.Engine.rules_skipped
    st.Engine.stmt_cache_hits st.Engine.stmt_cache_misses
    st.Engine.stmt_cache_invalidations

(* The planner's view of one table: row count and, per index, the
   incrementally-maintained distinct-key count that drives the cost
   model's selectivity estimates. *)
let print_table_stats system tbl =
  let db = Engine.database (System.engine system) in
  if not (Database.has_table db tbl) then
    Printf.printf "no table %s\n" tbl
  else begin
    let t = Database.table db tbl in
    Printf.printf "table %s: %d rows\n" tbl (Table.cardinality t);
    match Table.index_list t with
    | [] -> print_endline "  (no indexes)"
    | ixs ->
      List.iter
        (fun ix ->
          Printf.printf "  %s index %s on (%s): %d distinct keys\n"
            (Index.kind_name (Index.kind ix))
            (Index.name ix) (Index.column ix) (Index.cardinality ix))
        ixs
  end

let print_analysis system =
  Format.printf "%a@." Analysis.pp_report (System.analyze system)

let print_trace system =
  let timed = Engine.timed_trace (System.engine system) in
  if timed = [] then
    print_endline
      "(no trace recorded; \\trace on enables tracing for later transactions)"
  else
    List.iter
      (fun (stamp, ev) ->
        match stamp with
        | None -> Format.printf "  %a@." Engine.pp_event ev
        | Some ts -> Format.printf "  [%.6f] %a@." ts Engine.pp_event ev)
      timed

let dump_trace system target =
  let jsonl = Engine.trace_jsonl (System.engine system) in
  if target = "-" then print_string jsonl
  else begin
    Out_channel.with_open_text target (fun oc ->
        Out_channel.output_string oc jsonl);
    Printf.printf "trace written to %s\n" target
  end

let print_report system =
  let rows = Engine.rule_report (System.engine system) in
  if rows = [] then print_endline "(no rule activity recorded)"
  else begin
    let with_time = Engine.has_clock (System.engine system) in
    Printf.printf "%-20s %10s %8s %12s %12s %8s\n" "rule" "considered" "fired"
      "cond_s" "action_s" "tuples";
    List.iter
      (fun r ->
        let seconds s = if with_time then Printf.sprintf "%.6f" s else "-" in
        Printf.printf "%-20s %10d %8d %12s %12s %8d\n" r.Engine.rr_rule
          r.Engine.rr_considered r.Engine.rr_fired
          (seconds r.Engine.rr_cond_seconds)
          (seconds r.Engine.rr_action_seconds)
          r.Engine.rr_effect_tuples)
      rows;
    if not with_time then
      print_endline "(times not collected; \\clock on enables timing)"
  end

(* The session's prepared statements, with their parameter counts and
   bodies — the registry PREPARE/EXECUTE/DEALLOCATE manage. *)
let print_prepared system =
  let eng = System.engine system in
  match Engine.prepared_names eng with
  | [] -> print_endline "(no prepared statements)"
  | names ->
    List.iter
      (fun name ->
        let p = Engine.find_prepared eng name in
        Printf.printf "%s (%d param%s): %s\n" name
          (Engine.prepared_nparams p)
          (if Engine.prepared_nparams p = 1 then "" else "s")
          (Sqlf.Pretty.op_str (Engine.prepared_op p)))
      names

let help_text =
  "meta-commands ('\\' and '.' prefixes are equivalent):\n\
   \\q               quit\n\
   \\analyze         static rule analysis (may-trigger graph, loops, conflicts)\n\
   \\stats           engine statistics\n\
   \\stats TABLE     planner statistics for TABLE (rows, index cardinalities)\n\
   \\trace           print the last transaction's rule-execution trace\n\
   \\trace on        enable tracing (\\trace off disables)\n\
   \\trace dump F    write the trace as JSON Lines to file F ('-' = stdout)\n\
   \\clock on        timestamp traces and time rules (\\clock off disables)\n\
   \\report          per-rule metrics (considered/fired/times/effect tuples)\n\
   \\prepared        list prepared statements (name, parameter count, body)\n\
   \\compile         show whether the compiling evaluator is in use\n\
   \\compile on      evaluate via compiled positional closures (default)\n\
   \\compile off     evaluate via the tree-walking interpreter\n\
   \\checkpoint      write a checkpoint now (needs --data-dir)\n\
   \\wal status      show WAL/checkpoint state (needs --data-dir)\n\
   \\help            this message\n\
   Everything else is SQL; statements end with ';'."

(* Read statements until a line ends (trimmed) with ';' or a
   meta-command is typed. *)
let interactive ?durable system =
  print_endline "sopr — set-oriented production rules shell. \\help for help.";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "sopr> " else "  ... ");
    print_string "";
    flush stdout;
    match In_channel.input_line stdin with
    | None -> print_newline ()
    | Some line ->
      let trimmed = String.trim line in
      if
        Buffer.length buf = 0
        && String.length trimmed > 0
        && (trimmed.[0] = '\\' || trimmed.[0] = '.')
      then begin
        let words =
          String.sub trimmed 1 (String.length trimmed - 1)
          |> String.split_on_char ' '
          |> List.filter (fun w -> w <> "")
        in
        (match words with
        | [ "q" ] | [ "quit" ] -> raise Exit
        | [ "analyze" ] -> print_analysis system
        | [ "stats" ] -> print_stats system
        | [ "stats"; tbl ] -> print_table_stats system tbl
        | [ "trace" ] -> print_trace system
        | [ "trace"; "on" ] ->
          Engine.set_tracing (System.engine system) true;
          print_endline "tracing enabled"
        | [ "trace"; "off" ] ->
          Engine.set_tracing (System.engine system) false;
          print_endline "tracing disabled"
        | [ "trace"; "dump"; target ] -> dump_trace system target
        | [ "clock"; "on" ] ->
          Engine.set_clock (System.engine system) (Some Unix.gettimeofday);
          print_endline "clock enabled"
        | [ "clock"; "off" ] ->
          Engine.set_clock (System.engine system) None;
          print_endline "clock disabled"
        | [ "report" ] -> print_report system
        | [ "prepared" ] -> print_prepared system
        | [ "compile" ] ->
          Printf.printf "expression compilation is %s\n"
            (if !Sqlf.Compile.enabled then "on" else "off")
        | [ "compile"; "on" ] ->
          Sqlf.Compile.enabled := true;
          print_endline "expression compilation enabled"
        | [ "compile"; "off" ] ->
          Sqlf.Compile.enabled := false;
          print_endline "expression compilation disabled (interpreter in use)"
        | [ "checkpoint" ] -> (
          match durable with
          | None -> print_endline "no data directory open (start with --data-dir)"
          | Some d -> (
            match Durability.Durable.checkpoint d with
            | () ->
              Printf.printf "checkpoint written (generation %d)\n"
                (Durability.Durable.generation d)
            | exception Errors.Error e -> print_error e))
        | [ "wal"; "status" ] -> (
          match durable with
          | None -> print_endline "no data directory open (start with --data-dir)"
          | Some d ->
            Format.printf "%a@." Durability.Durable.pp_status
              (Durability.Durable.status d))
        | [ "help" ] -> print_endline help_text
        | _ -> Printf.printf "unknown meta-command %s\n" trimmed);
        loop ()
      end
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        let ends_stmt =
          String.length trimmed > 0
          && trimmed.[String.length trimmed - 1] = ';'
        in
        if ends_stmt then begin
          let sql = Buffer.contents buf in
          Buffer.clear buf;
          exec_and_print ?durable system sql
        end;
        loop ()
      end
  in
  (try loop () with Exit -> ());
  print_endline "bye."

let run file expr interactive_flag track_selects max_steps data_dir
    checkpoint_every =
  let config =
    { Engine.default_config with track_selects; max_steps }
  in
  let durable, system =
    match data_dir with
    | None -> (None, System.create ~config ())
    | Some dir ->
      let checkpoint_interval =
        if checkpoint_every > 0 then Some checkpoint_every else None
      in
      let d, info =
        Durability.Durable.open_dir ~config ?checkpoint_interval dir
      in
      if info.Durability.Recovery.ri_records > 0
         || info.Durability.Recovery.ri_checkpoint_used
         || info.Durability.Recovery.ri_torn
      then
        Format.printf "recovered %s: %a@." dir Durability.Recovery.pp_info info;
      (Some d, Durability.Durable.system d)
  in
  (match file with
  | Some path ->
    let sql = In_channel.with_open_text path In_channel.input_all in
    exec_and_print ?durable system sql
  | None -> ());
  (match expr with
  | Some sql -> exec_and_print ?durable system sql
  | None -> ());
  if interactive_flag || (file = None && expr = None) then
    interactive ?durable system;
  Option.iter Durability.Durable.close durable

open Cmdliner

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc:"Execute SQL script $(docv).")

let expr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "execute" ] ~docv:"SQL" ~doc:"Execute the statement $(docv).")

let interactive_arg =
  Arg.(
    value & flag
    & info [ "i"; "interactive" ]
        ~doc:"Enter interactive mode after running the script.")

let track_selects_arg =
  Arg.(
    value & flag
    & info [ "track-selects" ]
        ~doc:
          "Maintain the S effect component so rules can be triggered by data \
           retrieval (paper Section 5.1).")

let max_steps_arg =
  Arg.(
    value
    & opt int Engine.default_config.Engine.max_steps
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Abort (and roll back) a transaction after $(docv) rule-action \
           executions: the run-time guard against divergent rule sets.")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the database in $(docv): recover its state on startup, \
           then write-ahead-log every committed transition. The directory is \
           created if absent.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "With --data-dir, automatically checkpoint after $(docv) WAL \
           records (0, the default, disables automatic checkpoints; \
           \\\\checkpoint forces one).")

let cmd =
  let doc = "set-oriented production rules on a relational database" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "An implementation of Widom & Finkelstein's set-oriented production \
         rules facility (SIGMOD 1990) on a from-scratch relational engine. \
         Rules are triggered by sets of changes and processed at transaction \
         boundaries.";
    ]
  in
  Cmd.v
    (Cmd.info "sopr" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ file_arg $ expr_arg $ interactive_arg $ track_selects_arg
      $ max_steps_arg $ data_dir_arg $ checkpoint_every_arg)

let () = exit (Cmd.eval cmd)

create table emp (name string, emp_no int primary key, salary float);
create table audit_log (name string, salary float);
create index emp_no_ix on emp (emp_no);
create index emp_salary_ix on emp (salary) using ordered;
insert into emp values ('ada', 1, 100.0), ('bob', 2, 200.0), ('cyd', 3, 300.0);
explain select * from emp where emp_no = 2;
explain select name from emp where salary = 200.0;
explain delete from emp where emp_no in (1, 2);
explain update emp set salary = salary + 1.0 where name = 'ada';
explain insert into audit_log values ('x', 0.0);
create rule audit
when deleted from emp
if exists (select * from deleted emp where salary > 100.0)
then insert into audit_log select name, salary from deleted emp;;
explain rule audit;
.stats emp
.stats audit_log
.stats missing
explain select name from emp where salary between 100.0 and 250.0;
explain select name from emp where salary > 150.0;
explain select * from emp e, audit_log a where e.name = a.name;
insert into audit_log values ('ada', 1.0), ('bob', 2.0);
select e.name, a.salary from emp e, audit_log a where e.name = a.name order by e.name;
.stats
.trace on
delete from emp where emp_no = 3;
.trace
.trace dump -
.report
select name from emp order by emp_no;
.q

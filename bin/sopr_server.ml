(* sopr-server — the concurrent-session socket server, plus a tiny
   line-protocol client.

   Usage:
     sopr-server serve  --port 7654 --data-dir DIR [--nosync|--group]
     sopr-server client --port 7654 [-f script.txt]

   [serve] listens until SIGINT/SIGTERM.  Each connection is a session:
   one request line in (a ';'-separated SQL script, or \q \stats
   \version \checkpoint), one framed ok/err response out.  Reads run
   against snapshots; commits are validated first-committer-wins;
   --group batches concurrent commits into one WAL record and fsync.

   [client] connects and bridges stdin lines to requests, printing each
   response body (errors as "error: ..."), which makes transcripts
   byte-deterministic for the smoke test. *)

open Core
module Server = Sopr_server.Server
module Client = Sopr_server.Client

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve port host data_dir nosync group checkpoint_every track_selects =
  let config = { Engine.default_config with track_selects } in
  let mode =
    match (data_dir, nosync, group) with
    | None, _, _ -> Server.Memory
    | Some _, _, true -> Server.Wal_group
    | Some _, true, false -> Server.Wal_nosync
    | Some _, false, false -> Server.Wal_sync
  in
  let checkpoint_interval =
    if checkpoint_every > 0 then Some checkpoint_every else None
  in
  let srv =
    try Server.create ~config ?checkpoint_interval ?data_dir mode
    with Errors.Error e ->
      Printf.eprintf "error: %s\n%!" (Errors.to_string e);
      exit 1
  in
  let listener = Server.start ~host ~port srv in
  Printf.printf "sopr-server: mode %s, listening on %s:%d%s\n%!"
    (Server.mode_name mode) host (Server.port listener)
    (match data_dir with Some d -> ", data in " ^ d | None -> "");
  (* Waiting on a condition variable here deadlocks against signal
     delivery: with the main thread in pthread_cond_wait and every
     other thread blocked in accept()/read(), no thread is executing
     OCaml code, so the runtime never reaches the safepoint that runs
     the Signal_handle closure and the signal is queued forever.
     Thread.delay returns to OCaml on every tick, which is exactly the
     safepoint the handler needs. *)
  let stop_requested = ref false in
  let request_stop _ = stop_requested := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  while not !stop_requested do
    Thread.delay 0.1
  done;
  print_endline "sopr-server: shutting down";
  Server.stop listener;
  Server.close srv

(* ------------------------------------------------------------------ *)
(* client                                                              *)

let client port host file =
  let c =
    try Client.connect ~host ~port ()
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot connect to %s:%d: %s\n%!" host port
        (Unix.error_message e);
      exit 1
  in
  let ic =
    match file with Some path -> open_in path | None -> stdin
  in
  (try
     let rec loop () =
       match input_line ic with
       | line ->
         let trimmed = String.trim line in
         if trimmed <> "" && not (String.length trimmed >= 2
                                  && String.sub trimmed 0 2 = "--") then begin
           (match Client.request c trimmed with
           | Ok body -> if body <> "" then print_endline body
           | Error msg -> Printf.printf "error: %s\n" msg);
           if trimmed = "\\q" || trimmed = "\\quit" then raise Exit
         end;
         loop ()
       | exception End_of_file -> ()
     in
     loop ()
   with
  | Exit -> ()
  | End_of_file -> Printf.eprintf "error: server closed the connection\n%!");
  Client.close c;
  if file <> None then close_in ic

(* ------------------------------------------------------------------ *)
(* command line                                                        *)

open Cmdliner

let port_arg =
  Arg.(
    value & opt int 7654
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks one).")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or connect to.")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the database in $(docv) (recovered on startup, \
           write-ahead-logged while serving). Without it the server is \
           in-memory.")

let nosync_arg =
  Arg.(
    value & flag
    & info [ "nosync" ]
        ~doc:"Skip the fsync per commit (benchmarking, not durability).")

let group_arg =
  Arg.(
    value & flag
    & info [ "group" ]
        ~doc:
          "Group commit: concurrent commits are batched into one WAL record \
           and one fsync.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "With --data-dir, checkpoint after $(docv) WAL records (0 \
           disables; \\\\checkpoint forces one).")

let track_selects_arg =
  Arg.(
    value & flag
    & info [ "track-selects" ]
        ~doc:
          "Maintain the S effect component: enables select-triggered rules \
           and escalates the server from snapshot isolation to \
           serializable (commits claim the tables their statements and \
           woken rules could have read).")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"SCRIPT"
        ~doc:"Read request lines from $(docv) instead of stdin.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve" ~doc:"run the server (default command)")
    Term.(
      const serve $ port_arg $ host_arg $ data_dir_arg $ nosync_arg $ group_arg
      $ checkpoint_every_arg $ track_selects_arg)

let client_cmd =
  Cmd.v
    (Cmd.info "client" ~doc:"connect and bridge stdin lines to requests")
    Term.(const client $ port_arg $ host_arg $ file_arg)

let cmd =
  let doc = "concurrent-session server for set-oriented production rules" in
  Cmd.group
    ~default:
      Term.(
        const serve $ port_arg $ host_arg $ data_dir_arg $ nosync_arg
        $ group_arg $ checkpoint_every_arg $ track_selects_arg)
    (Cmd.info "sopr-server" ~version:"1.0.0" ~doc)
    [ serve_cmd; client_cmd ]

let () = exit (Cmd.eval cmd)

(* sopr-workload — run the scenario corpus.

   Usage:
     sopr-workload list
     sopr-workload run  [SCENARIO...] [profile flags]
     sopr-workload soak [SCENARIO...] --data-dir DIR [profile flags]
     sopr-workload bench [SCENARIO...] [--duration SECS] [profile flags]

   [run] executes the generated stream on three in-memory twins
   (compiled+indexed, interpreted, index-free) with per-transaction
   differential checks and invariant checks.  [soak] adds durability:
   a live fault-injection phase and a fork+SIGKILL crash phase over
   --data-dir, with invariants and recovery differentials checked
   after every recovery.  [bench] reports plain throughput. *)

open Cmdliner
module Scenario = Workload.Scenario
module Scenarios = Workload.Scenarios
module Profile = Workload.Profile
module Runner = Workload.Runner

let () = Scenarios.register_all ()

(* ------------------------------------------------------------------ *)
(* Profile flags                                                       *)

let seed_arg =
  Arg.(
    value
    & opt int Profile.default.Profile.seed
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "PRNG seed. A run is deterministic in the seed: the same value \
           regenerates the same transaction stream.")

let txns_arg =
  Arg.(
    value
    & opt int Profile.default.Profile.txns
    & info [ "txns" ] ~docv:"N" ~doc:"Transactions to drive per scenario.")

let min_ops_arg =
  Arg.(
    value
    & opt int Profile.default.Profile.min_ops
    & info [ "min-ops" ] ~docv:"N" ~doc:"Smallest operation block.")

let max_ops_arg =
  Arg.(
    value
    & opt int Profile.default.Profile.max_ops
    & info [ "max-ops" ] ~docv:"N" ~doc:"Largest operation block.")

let read_frac_arg =
  Arg.(
    value
    & opt float Profile.default.Profile.read_frac
    & info [ "read-frac" ] ~docv:"F"
        ~doc:"Fraction of operations that are reads, in [0,1].")

let keys_arg =
  Arg.(
    value
    & opt int Profile.default.Profile.keys
    & info [ "keys" ] ~docv:"N" ~doc:"Key-space size per scenario entity.")

let theta_arg =
  Arg.(
    value
    & opt float Profile.default.Profile.theta
    & info [ "theta" ] ~docv:"F"
        ~doc:
          "Zipfian key skew in [0,1): 0 is uniform, 0.99 is the YCSB \
           hotspot default.")

let rule_density_arg =
  Arg.(
    value
    & opt int Profile.default.Profile.rule_density
    & info [ "rule-density" ] ~docv:"N"
        ~doc:
          "Extra never-firing rules installed at setup, scaling the rule \
           set the engine must consider per transition.")

let profile_term =
  let make seed txns min_ops max_ops read_frac keys theta rule_density =
    {
      Profile.seed;
      txns;
      min_ops;
      max_ops;
      read_frac;
      keys;
      theta;
      rule_density;
    }
  in
  Term.(
    const make $ seed_arg $ txns_arg $ min_ops_arg $ max_ops_arg
    $ read_frac_arg $ keys_arg $ theta_arg $ rule_density_arg)

let scenarios_arg =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"SCENARIO"
        ~doc:"Scenarios to run (default: every registered scenario).")

let resolve names =
  match names with
  | [] -> Scenario.all ()
  | names -> List.map Scenario.get names

let report r = Format.printf "%a@." Runner.pp_report r

let catching f =
  match f () with
  | () -> 0
  | exception Runner.Check_failed msg ->
    Format.eprintf "FAILED: %s@." msg;
    1
  | exception Invalid_argument msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)

let list_cmd =
  let run () =
    List.iter
      (fun sc ->
        Format.printf "%-14s %s@." sc.Scenario.sc_name sc.Scenario.sc_doc)
      (Scenario.all ());
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the registered scenarios.")
    Term.(const run $ const ())

let prepared_arg =
  Arg.(
    value & flag
    & info [ "prepared" ]
        ~doc:
          "Also drive the stream through PREPARE/EXECUTE: literals are \
           lifted into positional parameters, each distinct statement shape \
           is prepared once, and the prepared twin must match direct \
           execution transaction by transaction.")

let run_cmd =
  let run names profile prepared =
    catching (fun () ->
        List.iter
          (fun sc ->
            report (Runner.run_short sc profile);
            if prepared then
              report (Runner.run_prepared_differential sc profile))
          (resolve names))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Drive scenarios in memory with differential and invariant checks.")
    Term.(const run $ scenarios_arg $ profile_term $ prepared_arg)

let data_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Scratch root for the durable soak (created if absent; contents \
           are disposable).")

let kills_arg =
  Arg.(
    value & opt int 3
    & info [ "kills" ] ~docv:"N"
        ~doc:"fork+SIGKILL crash/recovery rounds per scenario.")

let fault_every_arg =
  Arg.(
    value & opt int 5
    & info [ "fault-every" ] ~docv:"N"
        ~doc:"Arm a live fault on every $(docv)-th transaction (0: never).")

let soak_cmd =
  let run names profile dir kills fault_every =
    catching (fun () ->
        List.iter
          (fun sc ->
            report (Runner.soak ~dir ~kills ~fault_every sc profile))
          (resolve names))
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Durable soak: live fault injection plus fork+SIGKILL crashes, \
          with invariants and recovery differentials checked after every \
          recovery.")
    Term.(
      const run $ scenarios_arg $ profile_term $ data_dir_arg $ kills_arg
      $ fault_every_arg)

let duration_arg =
  Arg.(
    value & opt float 1.0
    & info [ "duration" ] ~docv:"SECS"
        ~doc:"Measurement window per scenario.")

let bench_cmd =
  let run names profile duration =
    catching (fun () ->
        List.iter
          (fun sc ->
            let tps, n = Runner.throughput ~duration sc profile in
            Format.printf "%-14s %8.0f txn/s  (%d txns in %.1fs)@."
              sc.Scenario.sc_name tps n duration)
          (resolve names))
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Plain throughput per scenario (no checks).")
    Term.(const run $ scenarios_arg $ profile_term $ duration_arg)

let clients_arg =
  Arg.(
    value & opt int 4
    & info [ "clients" ] ~docv:"N"
        ~doc:"Concurrent client sessions driving the stream.")

let server_mode_arg =
  let modes =
    [
      ("memory", Sopr_server.Server.Memory);
      ("sync", Sopr_server.Server.Wal_sync);
      ("nosync", Sopr_server.Server.Wal_nosync);
      ("group", Sopr_server.Server.Wal_group);
    ]
  in
  Arg.(
    value
    & opt (enum modes) Sopr_server.Server.Memory
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Durability mode: $(b,memory), $(b,sync), $(b,nosync) or \
           $(b,group).  The WAL modes require --data-dir.")

let opt_data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:"Data directory for the WAL modes (created if absent).")

let server_cmd =
  let run names profile clients mode data_dir =
    catching (fun () ->
        List.iter
          (fun sc ->
            Format.printf "%a@." Workload.Server_driver.pp_report
              (Workload.Server_driver.run ~clients ~mode ?data_dir sc
                 profile))
          (resolve names))
  in
  Cmd.v
    (Cmd.info "server"
       ~doc:
         "Drive scenarios through concurrent TCP client sessions against \
          an in-process server, retrying serialization conflicts, then \
          prove the run serializable by replaying the committed blocks in \
          publish order and comparing value digests.")
    Term.(
      const run $ scenarios_arg $ profile_term $ clients_arg
      $ server_mode_arg $ opt_data_dir_arg)

let cmd =
  let doc = "scenario corpus and workload generator for sopr" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the registered rule-system scenarios (quota enforcement, \
         audit trail, incremental materialized views, referential cascades, \
         constraint repair) under a seeded YCSB-style workload generator \
         with Zipfian key skew, checking each scenario's declared \
         invariants and the engine's differential equivalences.";
    ]
  in
  Cmd.group (Cmd.info "sopr-workload" ~version:"1.0.0" ~doc ~man)
    [ list_cmd; run_cmd; soak_cmd; bench_cmd; server_cmd ]

let () = exit (Cmd.eval' cmd)

(* Auditing and authorization-style monitoring using the Section 5
   extensions.

   Run with:  dune exec examples/audit_trail.exe

   The schema and audit rules come from the registered [audit-trail]
   workload scenario — the same definition the test suite soaks and
   the E17 benchmark measures — so the example cannot drift from what
   the tests verify.  On top of it, this example demonstrates the
   Section 5 extensions the scenario exercises or deliberately leaves
   out:

   - Section 5.1: rules triggered by data retrieval (the scenario's
     config enables select tracking); reads of account balances inside
     a transaction are recorded at commit.
   - Section 5.2: an external-procedure action pages an operator (here:
     prints to stdout) and returns the operation block to apply.
     Registered scenarios are procedure-free — recovery cannot
     re-register OCaml code — so this part is example-only.
   - Section 5.3: explicit rule triggering points inside a long
     transaction. *)

open Core

let show s sql =
  Printf.printf "> %s\n" sql;
  List.iter (fun r -> print_endline (System.render_result r)) (System.exec s sql)

let () =
  Workload.Scenarios.register_all ();
  let sc = Workload.Scenario.get Workload.Scenarios.audit_trail in
  let profile = { Workload.Profile.default with keys = 24; txns = 50 } in

  Printf.printf "-- Scenario %S: %s\n\n" sc.Workload.Scenario.sc_name
    sc.Workload.Scenario.sc_doc;

  (* The scenario's config enables select tracking (Section 5.1). *)
  let s = System.create ~config:sc.Workload.Scenario.sc_config () in
  List.iter
    (fun stmt -> ignore (System.exec s stmt))
    (Workload.Runner.setup_statements sc profile);
  show s "show rules";

  print_endline "\n-- Reads inside a transaction are audited at commit:";
  show s "begin";
  show s "select bal from acct where id = 1";
  show s "commit";
  show s "select * from audit_log where kind = 'R'";

  (* External procedure (Section 5.2): called for large raises; computes
     a compensating operation block in OCaml.  Added on top of the
     registered rules. *)
  System.register_procedure s "page_operator" (fun ctx ->
      let big =
        ctx.Procedures.query
          (Parser.parse_select_string
             "select n.id from new updated acct.bal n, old updated acct.bal o \
              where n.id = o.id and n.bal > 2 * o.bal")
      in
      List.iter
        (fun row ->
          Printf.printf "  [pager] suspicious balance jump for account %s\n"
            (Value.to_display row.(0)))
        big.Eval.rows;
      (* cap the jump at exactly 2x by returning a repair block *)
      List.filter_map
        (fun row ->
          match row.(0) with
          | Value.Int id ->
            Some
              (match
                 Parser.parse_statement_string
                   (Printf.sprintf
                      "update acct set bal = (select 2 * o.bal from old \
                       updated acct.bal o where o.id = %d) where id = %d"
                      id id)
               with
              | Ast.Stmt_op op -> op
              | _ -> assert false)
          | _ -> None)
        big.Eval.rows);
  ignore
    (System.exec s
       "create rule cap_raises when updated acct.bal if exists (select * from \
        new updated acct.bal n, old updated acct.bal o where n.id = o.id and \
        n.bal > 2 * o.bal) then call page_operator");
  (* The cap must settle before any auditing: if ver_bump ran between
     the original update and the repair, the repair would count as a
     second version bump with no second audit row, breaking the
     scenario's update-audit-equals-version-total invariant. *)
  ignore (System.exec s "create rule priority cap_raises before aud_upd");
  ignore (System.exec s "create rule priority cap_raises before ver_bump");

  print_endline "\n-- A 3x balance jump is capped by the external procedure,";
  print_endline "-- then audited and version-bumped by the scenario's rules:";
  show s "update acct set bal = bal * 3 where id = 1";
  show s "select * from acct where id = 1";
  show s "select * from audit_log where kind = 'U'";

  print_endline "\n-- Triggering points (Section 5.3) split one transaction:";
  show s "begin";
  show s "update acct set bal = bal + 1 where id = 0";
  show s "process rules";
  show s "update acct set bal = bal + 1 where id = 1";
  show s "commit";
  show s "select count(*) from audit_log where kind = 'U'";

  (* Generated traffic: the same transaction stream the soak tests
     drive.  The procedure-backed cap rule is deactivated first so the
     run stays procedure-free like the registered scenario; the audit
     invariants must hold over narrative and generated traffic alike. *)
  ignore (System.exec s "deactivate rule cap_raises");
  Printf.printf "\n-- Driving %d generated transactions (%s)...\n"
    profile.Workload.Profile.txns
    (Workload.Profile.describe profile);
  let committed = ref 0 and rolled_back = ref 0 in
  List.iter
    (fun block ->
      match Workload.Runner.run_block s block with
      | Workload.Runner.Done (Engine.Committed, _) -> incr committed
      | Workload.Runner.Done (Engine.Rolled_back, _) | Workload.Runner.Failed _
        ->
        incr rolled_back)
    (Workload.Runner.gen_blocks sc profile);
  Printf.printf "   %d committed, %d rolled back (duplicate keys)\n" !committed
    !rolled_back;

  Workload.Runner.check_invariants sc ~context:"example" s;
  List.iter
    (fun inv ->
      Printf.printf "   invariant %-34s holds\n" inv.Workload.Scenario.inv_name)
    sc.Workload.Scenario.sc_invariants

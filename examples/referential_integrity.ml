(* Referential integrity via the constraint compiler.

   Run with:  dune exec examples/referential_integrity.exe

   The paper motivates production rules as the mechanism for integrity
   enforcement ([Esw76], Section 1) and points to a higher-level
   constraint facility compiled into rules (Section 6, [CW90]).  This
   example uses the registered [ref-cascade] workload scenario — the
   same schema, rules and invariants the test suite soaks and the E17
   benchmark measures — so the example cannot drift from what the
   tests verify.  It walks the narrative by hand, then hammers the
   system with generated traffic and checks the scenario's declared
   invariants. *)

open Core

let show s sql =
  Printf.printf "> %s\n" sql;
  match System.exec s sql with
  | results ->
    List.iter (fun r -> print_endline (System.render_result r)) results
  | exception Errors.Error e -> Printf.printf "!! %s\n" (Errors.to_string e)

let () =
  Workload.Scenarios.register_all ();
  let sc = Workload.Scenario.get Workload.Scenarios.ref_cascade in
  let profile = { Workload.Profile.default with keys = 32; txns = 60 } in

  Printf.printf "-- Scenario %S: %s\n\n" sc.Workload.Scenario.sc_name
    sc.Workload.Scenario.sc_doc;

  (* The setup comes from the registry: a four-level FK chain declared
     in DDL, compiled into rules. *)
  let s = System.create ~config:sc.Workload.Scenario.sc_config () in
  List.iter (show s) (Workload.Runner.setup_statements sc profile);

  print_endline "\n-- The constraints were compiled into production rules:";
  show s "show rules";

  print_endline "\n-- Key violations are rolled back by the generated rules.";
  show s "insert into region values (0, 'duplicate-key')";
  show s "insert into dept values (999, 77)";

  print_endline
    "\n-- Deleting a region cascades through dept to emp; badges are\n\
     -- set to NULL by the leaf foreign key's repair rule.  All of this\n\
     -- is ordinary rule processing in one transaction.";
  show s "insert into emp values (100, 1); insert into badge values (9001, 100)";
  show s "select rid from dept where did = 1";
  show s "delete from region where rid = (select rid from dept where did = 1)";
  show s "select * from emp where eid = 100";
  show s "select * from badge where bid = 9001";

  (* Generated traffic: the same transaction stream the soak tests
     drive, checked against the same invariants. *)
  Printf.printf "\n-- Driving %d generated transactions (%s)...\n"
    profile.Workload.Profile.txns
    (Workload.Profile.describe profile);
  let committed = ref 0 and rolled_back = ref 0 in
  List.iter
    (fun block ->
      match Workload.Runner.run_block s block with
      | Workload.Runner.Done (Engine.Committed, _) -> incr committed
      | Workload.Runner.Done (Engine.Rolled_back, _) | Workload.Runner.Failed _
        ->
        incr rolled_back)
    (Workload.Runner.gen_blocks sc profile);
  Printf.printf "   %d committed, %d rolled back (FK violations)\n" !committed
    !rolled_back;

  Workload.Runner.check_invariants sc ~context:"example" s;
  List.iter
    (fun inv ->
      Printf.printf "   invariant %-28s holds\n" inv.Workload.Scenario.inv_name)
    sc.Workload.Scenario.sc_invariants;

  print_endline "\n-- A rule-set analysis (Section 6): loops and conflicts.";
  let report = System.analyze s in
  Format.printf "%a@." Analysis.pp_report report

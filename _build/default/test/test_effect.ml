(* Tests for transition effects and Definition 2.1 composition. *)

open Core
open Helpers

let h table = Handle.fresh table

let eff_testable =
  Alcotest.testable (fun ppf e -> Effect.pp ppf e) Effect.equal

let test_single_op_effects () =
  let h1 = h "t" in
  let e = Effect.of_inserted [ h1 ] in
  Alcotest.(check bool) "ins member" true (Handle.Set.mem h1 e.Effect.ins);
  Alcotest.(check bool) "well formed" true (Effect.well_formed e);
  let e = Effect.of_deleted [ h1 ] in
  Alcotest.(check bool) "del member" true (Handle.Set.mem h1 e.Effect.del);
  let e = Effect.of_updated [ (h1, [ "a"; "b" ]) ] in
  Alcotest.(check int) "upd cols" 2
    (Effect.Col_set.cardinal (Handle.Map.find h1 e.Effect.upd))

(* The paper's netting rules, Section 2.2. *)
let test_insert_then_delete_is_nothing () =
  let h1 = h "t" in
  let e =
    Effect.compose (Effect.of_inserted [ h1 ]) (Effect.of_deleted [ h1 ])
  in
  Alcotest.(check bool) "empty" true (Effect.is_empty e)

let test_insert_then_update_is_insert () =
  let h1 = h "t" in
  let e =
    Effect.compose
      (Effect.of_inserted [ h1 ])
      (Effect.of_updated [ (h1, [ "c" ]) ])
  in
  Alcotest.(check bool) "ins" true (Handle.Set.mem h1 e.Effect.ins);
  Alcotest.(check bool) "no upd" true (Handle.Map.is_empty e.Effect.upd);
  Alcotest.(check bool) "well formed" true (Effect.well_formed e)

let test_update_then_delete_is_delete () =
  let h1 = h "t" in
  let e =
    Effect.compose
      (Effect.of_updated [ (h1, [ "c" ]) ])
      (Effect.of_deleted [ h1 ])
  in
  Alcotest.(check bool) "del" true (Handle.Set.mem h1 e.Effect.del);
  Alcotest.(check bool) "no upd" true (Handle.Map.is_empty e.Effect.upd)

let test_updates_merge () =
  let h1 = h "t" in
  let e =
    Effect.compose
      (Effect.of_updated [ (h1, [ "a" ]) ])
      (Effect.of_updated [ (h1, [ "b" ]) ])
  in
  let cols = Handle.Map.find h1 e.Effect.upd in
  Alcotest.(check bool) "a" true (Effect.Col_set.mem "a" cols);
  Alcotest.(check bool) "b" true (Effect.Col_set.mem "b" cols)

(* Delete then insert of a NEW tuple is never treated as an update
   (Section 2.2): the handles differ, so both survive composition. *)
let test_delete_then_insert_not_update () =
  let h1 = h "t" and h2 = h "t" in
  let e =
    Effect.compose (Effect.of_deleted [ h1 ]) (Effect.of_inserted [ h2 ])
  in
  Alcotest.(check bool) "del kept" true (Handle.Set.mem h1 e.Effect.del);
  Alcotest.(check bool) "ins kept" true (Handle.Set.mem h2 e.Effect.ins);
  Alcotest.(check bool) "no upd" true (Handle.Map.is_empty e.Effect.upd)

let test_identity () =
  let h1 = h "t" in
  let e = Effect.of_updated [ (h1, [ "c" ]) ] in
  Alcotest.check eff_testable "left id" e (Effect.compose Effect.empty e);
  Alcotest.check eff_testable "right id" e (Effect.compose e Effect.empty)

let test_triggering_predicates () =
  let he = h "emp" and hd = h "dept" in
  let e =
    Effect.compose
      (Effect.of_inserted [ he ])
      (Effect.of_updated [ (hd, [ "mgr_no" ]) ])
  in
  let sat p = Effect.satisfies_pred e p in
  Alcotest.(check bool) "inserted emp" true (sat (Ast.Tp_inserted "emp"));
  Alcotest.(check bool) "inserted dept" false (sat (Ast.Tp_inserted "dept"));
  Alcotest.(check bool) "deleted emp" false (sat (Ast.Tp_deleted "emp"));
  Alcotest.(check bool) "updated dept" true (sat (Ast.Tp_updated ("dept", None)));
  Alcotest.(check bool) "updated dept.mgr_no" true
    (sat (Ast.Tp_updated ("dept", Some "mgr_no")));
  Alcotest.(check bool) "updated dept.dept_no" false
    (sat (Ast.Tp_updated ("dept", Some "dept_no")));
  Alcotest.(check bool) "disjunction" true
    (Effect.satisfies_any e [ Ast.Tp_deleted "emp"; Ast.Tp_inserted "emp" ]);
  Alcotest.(check bool) "empty disjunction" false (Effect.satisfies_any e [])

let test_select_component () =
  let he = h "emp" in
  let e = Effect.of_selected [ (he, [ "salary" ]) ] in
  Alcotest.(check bool) "selected emp" true
    (Effect.satisfies_pred e (Ast.Tp_selected ("emp", None)));
  Alcotest.(check bool) "selected emp.salary" true
    (Effect.satisfies_pred e (Ast.Tp_selected ("emp", Some "salary")));
  Alcotest.(check bool) "selected emp.name" false
    (Effect.satisfies_pred e (Ast.Tp_selected ("emp", Some "name")));
  (* selection of a tuple later deleted is dropped *)
  let e2 = Effect.compose e (Effect.of_deleted [ he ]) in
  Alcotest.(check bool) "pruned" false
    (Effect.satisfies_pred e2 (Ast.Tp_selected ("emp", None)))

(* ------------------------------------------------------------------ *)
(* Property tests: generate valid operation histories over a handle
   pool and check algebraic laws of composition.                       *)

let gen_history =
  (* produce a list of effects corresponding to a valid history *)
  let open QCheck.Gen in
  let cols = [ "a"; "b"; "c" ] in
  let gen_step = frequency
      [ (2, return `Ins); (1, return `Del); (3, return `Upd) ]
  in
  let rec build live acc n st =
    if n = 0 then List.rev acc
    else
      let step = gen_step st in
      match step with
      | `Ins ->
        let hh = Handle.fresh "sim" in
        build (hh :: live) (Effect.of_inserted [ hh ] :: acc) (n - 1) st
      | `Del when live <> [] ->
        let i = int_bound (List.length live - 1) st in
        let victim = List.nth live i in
        let live = List.filteri (fun j _ -> j <> i) live in
        build live (Effect.of_deleted [ victim ] :: acc) (n - 1) st
      | `Upd when live <> [] ->
        let i = int_bound (List.length live - 1) st in
        let c = List.nth cols (int_bound (List.length cols - 1) st) in
        build live
          (Effect.of_updated [ (List.nth live i, [ c ]) ] :: acc)
          (n - 1) st
      | _ -> build live acc n st
  in
  fun st ->
    let n = int_range 1 12 st in
    build [] [] n st

let arb_history =
  QCheck.make
    ~print:(fun effs ->
      String.concat "; " (List.map (fun e -> Fmt.str "%a" Effect.pp e) effs))
    gen_history

let fold_compose = List.fold_left Effect.compose Effect.empty

let prop_composition_associative =
  QCheck.Test.make ~name:"effect composition is associative over histories"
    ~count:300 arb_history (fun effs ->
      (* compare left fold against a right fold *)
      let left = fold_compose effs in
      let right = List.fold_right (fun e acc -> Effect.compose e acc) effs Effect.empty in
      Effect.equal left right)

let prop_composition_well_formed =
  QCheck.Test.make ~name:"composition preserves well-formedness" ~count:300
    arb_history (fun effs ->
      List.for_all Effect.well_formed effs && Effect.well_formed (fold_compose effs))

let prop_split_composition =
  QCheck.Test.make
    ~name:"composite of prefix and suffix equals composite of whole"
    ~count:300
    QCheck.(pair arb_history small_nat)
    (fun (effs, k) ->
      let n = List.length effs in
      let k = if n = 0 then 0 else k mod (n + 1) in
      let rec split i = function
        | rest when i = 0 -> ([], rest)
        | [] -> ([], [])
        | x :: rest ->
          let a, b = split (i - 1) rest in
          (x :: a, b)
      in
      let prefix, suffix = split k effs in
      Effect.equal
        (Effect.compose (fold_compose prefix) (fold_compose suffix))
        (fold_compose effs))

let suite =
  [
    Alcotest.test_case "single-op effects" `Quick test_single_op_effects;
    Alcotest.test_case "insert;delete nets to nothing" `Quick
      test_insert_then_delete_is_nothing;
    Alcotest.test_case "insert;update nets to insert" `Quick
      test_insert_then_update_is_insert;
    Alcotest.test_case "update;delete nets to delete" `Quick
      test_update_then_delete_is_delete;
    Alcotest.test_case "updates merge columns" `Quick test_updates_merge;
    Alcotest.test_case "delete;insert stays delete+insert" `Quick
      test_delete_then_insert_not_update;
    Alcotest.test_case "empty is identity" `Quick test_identity;
    Alcotest.test_case "triggering predicates" `Quick test_triggering_predicates;
    Alcotest.test_case "select component (ext 5.1)" `Quick test_select_component;
    qtest prop_composition_associative;
    qtest prop_composition_well_formed;
    qtest prop_split_composition;
  ]

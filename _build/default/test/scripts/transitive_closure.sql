-- Semi-naive transitive closure via self-triggering set-oriented
-- rules: transition tables are the datalog deltas.

create table edge (src int, dst int);
create table path (src int, dst int);

create rule tc_base
when inserted into edge
then insert into path
  (select e.src, e.dst from inserted edge e
    where not exists (select * from path p
                       where p.src = e.src and p.dst = e.dst));;

create rule tc_right
when inserted into path
then insert into path
  (select d.src, e.dst from inserted path d, edge e
    where e.src = d.dst
      and not exists (select * from path p
                       where p.src = d.src and p.dst = e.dst));;

create rule tc_left
when inserted into path
then insert into path
  (select p.src, d.dst from path p, inserted path d
    where p.dst = d.src
      and not exists (select * from path p2
                       where p2.src = p.src and p2.dst = d.dst));;

-- a 6-node chain loaded at once: closure has n*(n-1)/2 = 15 pairs
insert into edge values (1, 2), (2, 3), (3, 4), (4, 5), (5, 6);

-- an incremental edge creating a diamond: 0 -> 1 and 0 -> 3
insert into edge values (0, 1);
insert into edge values (0, 3);

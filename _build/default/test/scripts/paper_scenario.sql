-- The paper's Section 4.5 scenario (Example 4.3) as a plain SQL
-- script: rules R1 and R2, the management hierarchy, the combined
-- deletion + salary updates.

create table emp (name string, emp_no int, salary float, dept_no int);
create table dept (dept_no int, mgr_no int);

create rule r1
when deleted from emp
then delete from emp
      where dept_no in (select dept_no from dept
                         where mgr_no in (select emp_no from deleted emp));
     delete from dept
      where mgr_no in (select emp_no from deleted emp);;

create rule r2
when updated emp.salary
if (select avg(salary) from new updated emp.salary) > 50000
then delete from emp
      where emp_no in (select emp_no from new updated emp.salary)
        and salary > 80000;;

create rule priority r2 before r1;

insert into dept values (1, 100), (2, 200), (3, 300);
insert into emp values
  ('Jane', 100, 60000, 0), ('Mary', 200, 70000, 1), ('Jim', 300, 40000, 1),
  ('Bill', 400, 25000, 2), ('Sam', 500, 30000, 3), ('Sue', 600, 30000, 3);

begin;
delete from emp where emp_no = 100;
update emp set salary = 85000 where emp_no = 200;
update emp set salary = 40000 where emp_no = 400;
commit;

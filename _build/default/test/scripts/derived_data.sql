-- Derived-data maintenance: a summary table kept consistent by rules,
-- including under compound queries and scalar functions.

create table sale (region string, amount float);
create table region_total (region string, total float);

create rule maintain_totals
when inserted into sale or deleted from sale or updated sale
then delete from region_total;
     insert into region_total
       (select region, sum(amount) from sale group by region);;

insert into sale values ('north', 10), ('north', 20), ('south', 5);
update sale set amount = amount * 2 where region = 'south';
delete from sale where amount < 15;

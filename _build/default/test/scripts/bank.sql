-- A small banking scenario exercising constraints, rules and
-- transactions together.  Executed by the scripts test suite.

create table account (
  id int primary key,
  owner string not null,
  balance float,
  check (balance >= 0)
);

create table transfer_log (from_id int, to_id int, amount float);

-- Every balance update is audited with old and new values joined.
create table balance_audit (id int, old_balance float, new_balance float);

create rule audit_balances
when updated account.balance
then insert into balance_audit
     (select o.id, o.balance, n.balance
        from old updated account.balance o, new updated account.balance n
       where o.id = n.id);;

-- Large single-transaction drains are refused outright.
create rule no_drain
when updated account.balance
if exists (select * from old updated account.balance o,
                         new updated account.balance n
            where o.id = n.id and n.balance < 0.1 * o.balance)
then rollback;;

insert into account values (1, 'ada', 1000), (2, 'bob', 500);

-- a legal transfer: one operation block, rules run at commit
begin;
update account set balance = balance - 200 where id = 1;
update account set balance = balance + 200 where id = 2;
insert into transfer_log values (1, 2, 200);
commit;

-- an illegal transfer: would drain account 1; the whole transaction
-- (both updates) must be rolled back by no_drain
begin;
update account set balance = balance - 790 where id = 1;
update account set balance = balance + 790 where id = 2;
commit;

-- a check-constraint violation: negative balance
update account set balance = balance - 10000 where id = 2;

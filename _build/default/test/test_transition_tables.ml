(* Transition-table materialization tests, driven through the engine so
   the tables are exactly what rule conditions/actions observe. *)

open Core
open Helpers

(* Install a probe rule whose action copies a transition table into a
   log table, so tests can inspect what the rule saw. *)
let probe_system ~preds ~select =
  let s =
    system
      "create table t (a int, b string);\n\
       create table log (a int, b string)"
  in
  run s
    (Printf.sprintf "create rule probe when %s then insert into log (%s)" preds
       select);
  s

let log_rows s = rows s "select a, b from log order by a"

let test_inserted_table () =
  let s = probe_system ~preds:"inserted into t" ~select:"select * from inserted t" in
  run s "insert into t values (1, 'x'), (2, 'y')";
  Alcotest.check rows_testable "both inserted"
    [ [| vi 1; vs "x" |]; [| vi 2; vs "y" |] ]
    (log_rows s)

let test_deleted_table () =
  let s = probe_system ~preds:"deleted from t" ~select:"select * from deleted t" in
  run s "insert into t values (1, 'x'), (2, 'y'), (3, 'z')";
  run s "delete from t where a >= 2";
  Alcotest.check rows_testable "deleted values"
    [ [| vi 2; vs "y" |]; [| vi 3; vs "z" |] ]
    (log_rows s)

let test_old_updated_table () =
  let s =
    probe_system ~preds:"updated t.a" ~select:"select * from old updated t.a"
  in
  run s "insert into t values (1, 'x'), (2, 'y')";
  run s "update t set a = a + 10 where a = 2";
  Alcotest.check rows_testable "old value" [ [| vi 2; vs "y" |] ] (log_rows s)

let test_new_updated_table () =
  let s =
    probe_system ~preds:"updated t.a" ~select:"select * from new updated t.a"
  in
  run s "insert into t values (1, 'x'), (2, 'y')";
  run s "update t set a = a + 10 where a = 2";
  Alcotest.check rows_testable "new value" [ [| vi 12; vs "y" |] ] (log_rows s)

let test_updated_without_column () =
  (* "updated t" exposes tuples updated in any column *)
  let s =
    probe_system ~preds:"updated t" ~select:"select * from old updated t"
  in
  run s "insert into t values (1, 'x'), (2, 'y')";
  run s "update t set b = 'z' where a = 1";
  Alcotest.check rows_testable "by other column" [ [| vi 1; vs "x" |] ] (log_rows s)

let test_column_restriction () =
  (* updated t.a must not fire for updates of b alone *)
  let s =
    probe_system ~preds:"updated t.a" ~select:"select * from old updated t.a"
  in
  run s "insert into t values (1, 'x')";
  run s "update t set b = 'q'";
  Alcotest.check rows_testable "not triggered" [] (log_rows s)

(* Within one operation block, the transition tables reflect the NET
   effect: a tuple inserted and updated in the same block appears in
   "inserted t" with its updated value and not in "new updated t". *)
let test_net_effect_within_block () =
  let s =
    system
      "create table t (a int, b string);\n\
       create table ins_log (a int, b string);\n\
       create table upd_log (a int, b string)"
  in
  run s
    "create rule probe_ins when inserted into t then insert into ins_log \
     (select * from inserted t)";
  run s
    "create rule probe_upd when updated t then insert into upd_log (select * \
     from new updated t)";
  ignore
    (System.exec_block s
       "insert into t values (1, 'x'); update t set b = 'y' where a = 1");
  Alcotest.check rows_testable "inserted with updated value"
    [ [| vi 1; vs "y" |] ]
    (rows s "select a, b from ins_log");
  Alcotest.check rows_testable "no update reported" []
    (rows s "select a, b from upd_log")

let test_delete_within_block_suppresses () =
  let s = probe_system ~preds:"inserted into t" ~select:"select * from inserted t" in
  ignore
    (System.exec_block s
       "insert into t values (1, 'x'); delete from t where a = 1");
  Alcotest.check rows_testable "insert+delete invisible" [] (log_rows s)

let test_alias_references () =
  (* transition tables can take table variables, as in the paper's
     "from ..., inserted t tvar, ..." *)
  let s =
    system
      "create table t (a int, b string);\n\
       create table log (a int, b string)"
  in
  run s
    "create rule probe when inserted into t then insert into log (select i.a, \
     i.b from inserted t i where i.a > 1)";
  run s "insert into t values (1, 'x'), (5, 'y')";
  Alcotest.check rows_testable "alias works" [ [| vi 5; vs "y" |] ] (log_rows s)

let test_illegal_reference_rejected () =
  (* Section 3's syntactic restriction: a rule may only reference
     transition tables matching its own transition predicates *)
  let s = system "create table t (a int, b string)" in
  expect_error (fun () ->
      System.exec s
        "create rule bad when inserted into t then delete from t where a in \
         (select a from deleted t)")

let test_reference_outside_rule_rejected () =
  let s = system "create table t (a int, b string)" in
  expect_error (fun () -> System.query s "select * from inserted t")

let suite =
  [
    Alcotest.test_case "inserted" `Quick test_inserted_table;
    Alcotest.test_case "deleted" `Quick test_deleted_table;
    Alcotest.test_case "old updated t.c" `Quick test_old_updated_table;
    Alcotest.test_case "new updated t.c" `Quick test_new_updated_table;
    Alcotest.test_case "updated t (any column)" `Quick
      test_updated_without_column;
    Alcotest.test_case "column restriction" `Quick test_column_restriction;
    Alcotest.test_case "net effect within block" `Quick
      test_net_effect_within_block;
    Alcotest.test_case "insert+delete invisible" `Quick
      test_delete_within_block_suppresses;
    Alcotest.test_case "alias references" `Quick test_alias_references;
    Alcotest.test_case "illegal transition reference rejected" `Quick
      test_illegal_reference_rejected;
    Alcotest.test_case "transition table outside rules rejected" `Quick
      test_reference_outside_rule_rejected;
  ]

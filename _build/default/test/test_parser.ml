(* Parser tests: structural assertions plus print/reparse round-trips
   (including all the paper's example rules verbatim). *)

open Core
open Helpers

let parse_one = Parser.parse_statement_string
let parse_expr = Parser.parse_expr_string

let test_expr_precedence () =
  (match parse_expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Lit _, Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  (match parse_expr "a or b and c" with
  | Ast.Or (_, Ast.And (_, _)) -> ()
  | _ -> Alcotest.fail "and binds tighter than or");
  (match parse_expr "not a = 1" with
  | Ast.Not (Ast.Cmp (Ast.Eq, _, _)) -> ()
  | _ -> Alcotest.fail "not applies to comparison");
  (match parse_expr "- 2 + 3" with
  | Ast.Binop (Ast.Add, Ast.Neg _, _) -> ()
  | _ -> Alcotest.fail "unary minus binds tight");
  match parse_expr "1 < 2 and 3 < 4" with
  | Ast.And (Ast.Cmp _, Ast.Cmp _) -> ()
  | _ -> Alcotest.fail "comparisons under and"

let test_expr_predicates () =
  (match parse_expr "x is null" with
  | Ast.Is_null _ -> ()
  | _ -> Alcotest.fail "is null");
  (match parse_expr "x is not null" with
  | Ast.Is_not_null _ -> ()
  | _ -> Alcotest.fail "is not null");
  (match parse_expr "x in (1, 2, 3)" with
  | Ast.In_list (_, [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "in list");
  (match parse_expr "x not in (select a from t)" with
  | Ast.Not_in_select _ -> ()
  | _ -> Alcotest.fail "not in select");
  (match parse_expr "x between 1 and 10" with
  | Ast.Between _ -> ()
  | _ -> Alcotest.fail "between");
  (match parse_expr "x not between 1 and 10" with
  | Ast.Not (Ast.Between _) -> ()
  | _ -> Alcotest.fail "not between");
  (match parse_expr "name like 'J%'" with
  | Ast.Like _ -> ()
  | _ -> Alcotest.fail "like");
  (match parse_expr "exists (select * from t)" with
  | Ast.Exists _ -> ()
  | _ -> Alcotest.fail "exists");
  match parse_expr "case when a = 1 then 'one' else 'other' end" with
  | Ast.Case ([ _ ], Some _) -> ()
  | _ -> Alcotest.fail "case"

let test_select_clauses () =
  let s =
    Parser.parse_select_string
      "select distinct d.dept_no, avg(salary) as a from emp e, dept d where \
       e.dept_no = d.dept_no group by d.dept_no having count(*) > 2 order by \
       a desc limit 5"
  in
  Alcotest.(check bool) "distinct" true s.Ast.distinct;
  Alcotest.(check int) "projections" 2 (List.length s.Ast.projections);
  Alcotest.(check int) "from" 2 (List.length s.Ast.from);
  Alcotest.(check bool) "where" true (s.Ast.where <> None);
  Alcotest.(check int) "group by" 1 (List.length s.Ast.group_by);
  Alcotest.(check bool) "having" true (s.Ast.having <> None);
  Alcotest.(check int) "order by" 1 (List.length s.Ast.order_by);
  Alcotest.(check (option int)) "limit" (Some 5) s.Ast.limit

let test_transition_table_references () =
  let s =
    Parser.parse_select_string
      "select * from inserted emp i, deleted dept, old updated emp.salary o, \
       new updated emp"
  in
  match s.Ast.from with
  | [
   { Ast.source = Ast.Transition (Ast.Tt_inserted "emp"); alias = Some "i" };
   { Ast.source = Ast.Transition (Ast.Tt_deleted "dept"); alias = None };
   {
     Ast.source = Ast.Transition (Ast.Tt_old_updated ("emp", Some "salary"));
     alias = Some "o";
   };
   { Ast.source = Ast.Transition (Ast.Tt_new_updated ("emp", None)); alias = None };
  ] -> ()
  | _ -> Alcotest.fail "transition table references"

let test_insert_forms () =
  (match parse_one "insert into t values (1, 'a', null)" with
  | Ast.Stmt_op (Ast.Insert { columns = None; source = `Values [ [ _; _; _ ] ]; _ })
    -> ()
  | _ -> Alcotest.fail "insert values");
  (match parse_one "insert into t values (1), (2), (3)" with
  | Ast.Stmt_op (Ast.Insert { source = `Values [ _; _; _ ]; _ }) -> ()
  | _ -> Alcotest.fail "multi-row insert");
  (match parse_one "insert into t (a, b) values (1, 2)" with
  | Ast.Stmt_op (Ast.Insert { columns = Some [ "a"; "b" ]; _ }) -> ()
  | _ -> Alcotest.fail "insert with columns");
  (match parse_one "insert into t (select * from s)" with
  | Ast.Stmt_op (Ast.Insert { source = `Select _; _ }) -> ()
  | _ -> Alcotest.fail "insert select parenthesized");
  match parse_one "insert into t select * from s" with
  | Ast.Stmt_op (Ast.Insert { source = `Select _; _ }) -> ()
  | _ -> Alcotest.fail "insert select bare"

let test_update_delete () =
  (match parse_one "update emp set salary = salary * 1.1, name = 'x' where emp_no = 1" with
  | Ast.Stmt_op (Ast.Update { sets = [ ("salary", _); ("name", _) ]; where = Some _; _ })
    -> ()
  | _ -> Alcotest.fail "update");
  (match parse_one "delete from emp" with
  | Ast.Stmt_op (Ast.Delete { where = None; _ }) -> ()
  | _ -> Alcotest.fail "delete all");
  match parse_one "delete from emp where salary > 10" with
  | Ast.Stmt_op (Ast.Delete { where = Some _; _ }) -> ()
  | _ -> Alcotest.fail "delete where"

let test_rule_definition () =
  let stmt =
    parse_one
      "create rule r1 when inserted into emp or deleted from emp or updated \
       emp.salary if exists (select * from emp) then delete from emp where \
       emp_no = 1"
  in
  match stmt with
  | Ast.Stmt_create_rule def ->
    Alcotest.(check string) "name" "r1" def.Ast.rule_name;
    Alcotest.(check int) "preds" 3 (List.length def.Ast.trans_preds);
    Alcotest.(check bool) "condition" true (def.Ast.condition <> None);
    (match def.Ast.action with
    | Ast.Act_block [ Ast.Delete _ ] -> ()
    | _ -> Alcotest.fail "action")
  | _ -> Alcotest.fail "not a rule"

let test_rule_multi_op_action () =
  (* ops inside the action are separated by ';' and parsed greedily *)
  let stmt =
    parse_one
      "create rule r2 when deleted from emp then delete from emp where 1 = 1; \
       delete from dept where 2 = 2"
  in
  match stmt with
  | Ast.Stmt_create_rule { Ast.action = Ast.Act_block [ Ast.Delete _; Ast.Delete _ ]; _ }
    -> ()
  | _ -> Alcotest.fail "two-op action"

let test_rule_block_terminator () =
  (* ';;' ends the rule's action block, so the following DML is a
     separate statement *)
  let stmts =
    Parser.parse_script
      "create rule r when inserted into t then delete from t;; insert into t \
       values (1)"
  in
  match stmts with
  | [ Ast.Stmt_create_rule _; Ast.Stmt_op (Ast.Insert _) ] -> ()
  | _ -> Alcotest.failf "got %d statements" (List.length stmts)

let test_rule_rollback_and_call () =
  (match parse_one "create rule r when inserted into t then rollback" with
  | Ast.Stmt_create_rule { Ast.action = Ast.Act_rollback; _ } -> ()
  | _ -> Alcotest.fail "rollback action");
  match parse_one "create rule r when inserted into t then call notify_admin" with
  | Ast.Stmt_create_rule { Ast.action = Ast.Act_call "notify_admin"; _ } -> ()
  | _ -> Alcotest.fail "call action"

let test_priority_statement () =
  match parse_one "create rule priority r1 before r2" with
  | Ast.Stmt_priority ("r1", "r2") -> ()
  | _ -> Alcotest.fail "priority"

let test_create_table () =
  let stmt =
    parse_one
      "create table emp (name string not null, emp_no int primary key, salary \
       float default 0.0, dept_no int references dept(dept_no), check (salary \
       >= 0))"
  in
  match stmt with
  | Ast.Stmt_create_table ct ->
    Alcotest.(check int) "columns" 4 (List.length ct.Ast.ct_columns);
    Alcotest.(check int) "table constraints" 1 (List.length ct.Ast.ct_constraints)
  | _ -> Alcotest.fail "create table"

let test_create_table_fk_actions () =
  let stmt =
    parse_one
      "create table emp (emp_no int, dept_no int, foreign key (dept_no) \
       references dept (dept_no) on delete cascade)"
  in
  match stmt with
  | Ast.Stmt_create_table
      { Ast.ct_constraints = [ Ast.T_foreign_key { on_delete = `Cascade; _ } ]; _ }
    -> ()
  | _ -> Alcotest.fail "fk cascade"

let test_misc_statements () =
  (match parse_one "begin" with Ast.Stmt_begin -> () | _ -> Alcotest.fail "begin");
  (match parse_one "commit" with Ast.Stmt_commit -> () | _ -> Alcotest.fail "commit");
  (match parse_one "rollback" with
  | Ast.Stmt_rollback -> ()
  | _ -> Alcotest.fail "rollback");
  (match parse_one "process rules" with
  | Ast.Stmt_process_rules -> ()
  | _ -> Alcotest.fail "process rules");
  (match parse_one "drop rule r" with
  | Ast.Stmt_drop_rule "r" -> ()
  | _ -> Alcotest.fail "drop rule");
  (match parse_one "deactivate rule r" with
  | Ast.Stmt_deactivate "r" -> ()
  | _ -> Alcotest.fail "deactivate");
  match parse_one "show rules" with
  | Ast.Stmt_show_rules -> ()
  | _ -> Alcotest.fail "show rules"

let test_parse_errors () =
  let bad sql = expect_error (fun () -> Parser.parse_script sql) in
  bad "select from";
  bad "insert t values (1)";
  bad "create rule when inserted into t then rollback";
  bad "create rule r if x then rollback";
  bad "update set x = 1";
  bad "select * from t where";
  bad "select * from t group 1";
  bad "create table t ()";
  bad "completely bogus"

(* ---- the paper's examples parse verbatim ---- *)

let paper_rules =
  [
    (* Example 3.1 *)
    "create rule ex31 when deleted from dept then delete from emp where \
     dept_no in (select dept_no from deleted dept)";
    (* Example 3.2 *)
    "create rule ex32 when updated emp.salary if (select sum(salary) from new \
     updated emp.salary) > (select sum(salary) from old updated emp.salary) \
     then update emp set salary = 0.95 * salary where dept_no = 2; update emp \
     set salary = 0.85 * salary where dept_no = 3";
    (* Example 3.3 *)
    "create rule ex33 when inserted into emp or deleted from emp or updated \
     emp.salary or updated emp.dept_no if exists (select * from emp e1 where \
     salary > 2 * (select avg(salary) from emp e2 where e2.dept_no = \
     e1.dept_no)) then delete from emp where emp_no = (select mgr_no from \
     dept where dept_no = 5)";
    (* Example 4.1 *)
    "create rule ex41 when deleted from emp then delete from emp where \
     dept_no in (select dept_no from dept where mgr_no in (select emp_no from \
     deleted emp)); delete from dept where mgr_no in (select emp_no from \
     deleted emp)";
    (* Example 4.2 *)
    "create rule ex42 when updated emp.salary if (select avg(salary) from new \
     updated emp.salary) > 50000 then delete from emp where emp_no in (select \
     emp_no from new updated emp.salary) and salary > 80000";
  ]

let test_paper_rules_parse () =
  List.iter
    (fun sql ->
      match parse_one sql with
      | Ast.Stmt_create_rule _ -> ()
      | _ -> Alcotest.failf "did not parse as a rule: %s" sql)
    paper_rules

(* ---- round trips ---- *)

let round_trip_statements =
  paper_rules
  @ [
      "select * from emp";
      "select distinct name from emp where salary > 100 order by name desc \
       limit 3";
      "select e.name, d.mgr_no from emp e, dept d where e.dept_no = d.dept_no";
      "select dept_no, sum(salary) from emp group by dept_no having \
       count(*) > 1";
      "select name from emp where salary between 10 and 20 and name like 'J%'";
      "select name from emp where dept_no in (1, 2) or dept_no is null";
      "insert into emp values ('a', 1, 2.5, null)";
      "insert into emp (name, emp_no) values ('b', 2)";
      "insert into emp (select * from emp)";
      "update emp set salary = salary * 1.1 where emp_no = 7";
      "delete from emp where not (salary >= 0)";
      "select case when salary > 10 then 'hi' else 'lo' end from emp";
      "select count(*) from emp, dept";
      "select * from (select name from emp) e2";
      "select name from emp union select name from emp";
      "select name from emp union all select name from emp except select \
       name from emp intersect select name from emp order by name desc limit \
       2";
    ]

let test_round_trip () =
  List.iter
    (fun sql ->
      let ast1 = parse_one sql in
      let printed =
        match ast1 with
        | Ast.Stmt_create_rule def -> Pretty.rule_def_str def
        | Ast.Stmt_op op -> Pretty.op_str op
        | _ -> Alcotest.fail "unexpected statement kind"
      in
      let ast2 = parse_one printed in
      if ast1 <> ast2 then
        Alcotest.failf "round trip changed AST:\n  %s\n  reprinted: %s" sql
          printed)
    round_trip_statements

let suite =
  [
    Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
    Alcotest.test_case "predicate forms" `Quick test_expr_predicates;
    Alcotest.test_case "select clauses" `Quick test_select_clauses;
    Alcotest.test_case "transition table references" `Quick
      test_transition_table_references;
    Alcotest.test_case "insert forms" `Quick test_insert_forms;
    Alcotest.test_case "update and delete" `Quick test_update_delete;
    Alcotest.test_case "rule definition" `Quick test_rule_definition;
    Alcotest.test_case "multi-op rule action" `Quick test_rule_multi_op_action;
    Alcotest.test_case "rule block terminator" `Quick test_rule_block_terminator;
    Alcotest.test_case "rollback and call actions" `Quick
      test_rule_rollback_and_call;
    Alcotest.test_case "priority statement" `Quick test_priority_statement;
    Alcotest.test_case "create table" `Quick test_create_table;
    Alcotest.test_case "fk actions" `Quick test_create_table_fk_actions;
    Alcotest.test_case "misc statements" `Quick test_misc_statements;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "paper rules parse verbatim" `Quick test_paper_rules_parse;
    Alcotest.test_case "print/reparse round trip" `Quick test_round_trip;
  ]

(* Interplay tests: combinations of features that stress the engine's
   bookkeeping — multi-table rules, assertions under triggering points,
   pruning with partially relevant rules, and priority ordering under
   randomized rule sets. *)

open Core
open Helpers

(* One rule triggered by changes to TWO tables, referencing both
   transition tables in one action: its trans-info must hold both
   tables' entries at once. *)
let test_multi_table_rule () =
  let s =
    system
      "create table emp (name string, dept_no int);\n\
       create table dept (dept_no int);\n\
       create table obituary (kind string, who string)"
  in
  run s
    "create rule mourn when deleted from emp or deleted from dept then insert \
     into obituary (select 'emp', name from deleted emp); insert into \
     obituary (select 'dept', 'dept ' || 'x' from deleted dept)";
  run s "insert into dept values (1), (2)";
  run s "insert into emp values ('ada', 1), ('bob', 2)";
  (* one block deleting from both tables: ONE firing sees both *)
  ignore
    (System.exec_block s
       "delete from emp where dept_no = 1; delete from dept where dept_no = 1");
  Alcotest.(check int) "both kinds recorded" 2
    (int_cell s "select count(*) from obituary");
  let st = Engine.stats (System.engine s) in
  Alcotest.(check int) "single firing" 1 st.Engine.rule_firings

(* Pruning with a partially relevant rule: a rule on tables {a, b}
   while a transition touches only b must still see b's changes. *)
let test_partial_relevance_pruning () =
  let outcome prune_info =
    let config = { Engine.default_config with prune_info } in
    let s =
      system ~config
        "create table a (x int);\ncreate table b (x int);\n\
         create table log (x int)"
    in
    run s
      "create rule watch when inserted into a or inserted into b then insert \
       into log (select x from inserted b)";
    run s "insert into b values (7)";
    rows s "select x from log"
  in
  Alcotest.check rows_testable "pruned sees b" [ [| vi 7 |] ] (outcome true);
  Alcotest.check rows_testable "naive agrees" [ [| vi 7 |] ] (outcome false)

(* Assertions hold at triggering points too, and a violation there
   rolls back the WHOLE transaction including already-processed
   blocks. *)
let test_assertion_at_triggering_point () =
  let s = System.create () in
  run s "create table pot (n int)";
  run s "insert into pot values (100)";
  run s
    "create assertion non_negative check (not exists (select * from pot \
     where n < 0))";
  run s "begin";
  run s "update pot set n = n - 50";
  (match System.exec s "process rules" with
  | [ System.Outcome Engine.Committed ] -> ()
  | _ -> Alcotest.fail "first half should pass");
  run s "update pot set n = n - 100";
  (match System.exec s "commit" with
  | [ System.Outcome Engine.Rolled_back ] -> ()
  | _ -> Alcotest.fail "second half should violate");
  (* rolled back to before the transaction, not to the triggering point *)
  Alcotest.(check int) "fully restored" 100 (int_cell s "select n from pot")

(* A repairing rule can fix an assertion violation before the
   assertion's own rollback rule considers the state (priorities). *)
let test_repair_before_assertion () =
  let s = System.create () in
  run s "create table stock (qty int)";
  run s "insert into stock values (10)";
  run s
    "create rule clamp when updated stock.qty if exists (select * from stock \
     where qty < 0) then update stock set qty = 0 where qty < 0";
  run s
    "create assertion stock_ok check (not exists (select * from stock where \
     qty < 0))";
  run s "create rule priority clamp before assert_stock_ok";
  Alcotest.(check bool) "overdraw repaired, not rejected" true
    (exec_committed s "update stock set qty = qty - 25");
  Alcotest.(check int) "clamped to zero" 0 (int_cell s "select qty from stock")

(* Rollback from a rule fired at the second triggering point must also
   discard rule actions performed at the first. *)
let test_rule_actions_across_triggering_points () =
  let s =
    system "create table t (x int);\ncreate table audit (x int)"
  in
  run s
    "create rule audit_t when inserted into t then insert into audit (select \
     x from inserted t)";
  run s
    "create rule veto when inserted into t if exists (select * from inserted \
     t where x = 13) then rollback";
  run s "begin";
  run s "insert into t values (1)";
  run s "process rules";
  Alcotest.(check int) "audit written mid-txn" 1
    (int_cell s "select count(*) from audit");
  run s "insert into t values (13)";
  (match System.exec s "commit" with
  | [ System.Outcome Engine.Rolled_back ] -> ()
  | _ -> Alcotest.fail "veto should fire");
  Alcotest.(check int) "audit rolled back too" 0
    (int_cell s "select count(*) from audit");
  Alcotest.(check int) "t rolled back too" 0 (int_cell s "select count(*) from t")

(* Deactivated rules are skipped even when their trigger matches, and
   reactivation does not resurrect stale transition information. *)
let test_deactivation_mid_stream () =
  let s = system "create table t (x int);\ncreate table log (x int)" in
  run s
    "create rule logger when inserted into t then insert into log (select x \
     from inserted t)";
  run s "deactivate rule logger";
  run s "insert into t values (1)";
  run s "activate rule logger";
  (* the old insert is gone; only new transitions trigger *)
  run s "insert into t values (2)";
  Alcotest.check rows_testable "only the new insert" [ [| vi 2 |] ]
    (rows s "select x from log")

(* Property: under a random linear priority chain, the firing order of
   co-triggered independent rules follows the declared order exactly. *)
let prop_priorities_respected =
  QCheck.Test.make ~name:"linear priorities dictate firing order" ~count:50
    QCheck.(pair (int_range 2 6) (int_bound 1000))
    (fun (k, seed) ->
      let s =
        system "create table t (x int);\ncreate table trace (who int, at int)"
      in
      (* k independent rules, each firing once *)
      for i = 1 to k do
        run s
          (Printf.sprintf
             "create rule p%d when inserted into t then insert into trace \
              values (%d, (select count(*) from trace))"
             i i)
      done;
      (* a random permutation as the priority chain *)
      let order = Array.init k (fun i -> i + 1) in
      let st = Random.State.make [| seed |] in
      for i = k - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      for i = 0 to k - 2 do
        run s
          (Printf.sprintf "create rule priority p%d before p%d" order.(i)
             order.(i + 1))
      done;
      run s "insert into t values (1)";
      let fired =
        List.map
          (fun row -> match row.(0) with Value.Int n -> n | _ -> -1)
          (rows s "select who from trace order by at")
      in
      fired = Array.to_list order)

let suite =
  [
    Alcotest.test_case "multi-table rule" `Quick test_multi_table_rule;
    Alcotest.test_case "partial relevance under pruning" `Quick
      test_partial_relevance_pruning;
    Alcotest.test_case "assertion at triggering point" `Quick
      test_assertion_at_triggering_point;
    Alcotest.test_case "repair before assertion" `Quick
      test_repair_before_assertion;
    Alcotest.test_case "rollback across triggering points" `Quick
      test_rule_actions_across_triggering_points;
    Alcotest.test_case "deactivation mid-stream" `Quick
      test_deactivation_mid_stream;
    qtest prop_priorities_respected;
  ]

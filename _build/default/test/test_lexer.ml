(* Lexer tests. *)

open Helpers

module Lexer = Sqlf.Lexer
module Token = Sqlf.Token

let tokens src =
  List.filter_map
    (fun { Token.token; _ } ->
      match token with Token.Eof -> None | t -> Some t)
    (Lexer.tokenize src)

let token_testable =
  Alcotest.testable
    (fun ppf t -> Fmt.string ppf (Token.to_string t))
    (fun a b -> a = b)

let check_tokens = Alcotest.(check (list token_testable))

let test_keywords_and_idents () =
  check_tokens "mixed case keywords"
    [ Token.Kw "SELECT"; Token.Kw "FROM"; Token.Ident "emp" ]
    (tokens "SeLeCt fRoM emp");
  check_tokens "ident with underscore"
    [ Token.Ident "dept_no" ]
    (tokens "dept_no");
  check_tokens "keyword-prefixed ident"
    [ Token.Ident "selection" ]
    (tokens "selection")

let test_numbers () =
  check_tokens "int" [ Token.Int_lit 42 ] (tokens "42");
  check_tokens "float" [ Token.Float_lit 4.5 ] (tokens "4.5");
  check_tokens "exponent" [ Token.Float_lit 1e3 ] (tokens "1e3");
  check_tokens "neg exponent" [ Token.Float_lit 2.5e-2 ] (tokens "2.5e-2");
  check_tokens "dot access stays int"
    [ Token.Ident "t"; Token.Symbol "."; Token.Ident "c" ]
    (tokens "t.c")

let test_strings () =
  check_tokens "simple" [ Token.Str_lit "abc" ] (tokens "'abc'");
  check_tokens "escaped quote" [ Token.Str_lit "it's" ] (tokens "'it''s'");
  check_tokens "empty" [ Token.Str_lit "" ] (tokens "''");
  expect_error (fun () -> tokens "'unterminated")

let test_symbols () =
  check_tokens "comparison ops"
    [
      Token.Symbol "<="; Token.Symbol ">="; Token.Symbol "<>"; Token.Symbol "<";
      Token.Symbol ">"; Token.Symbol "=";
    ]
    (tokens "<= >= <> < > =");
  check_tokens "bang equals" [ Token.Symbol "<>" ] (tokens "!=");
  check_tokens "concat" [ Token.Symbol "||" ] (tokens "||");
  check_tokens "arith"
    [ Token.Symbol "+"; Token.Symbol "-"; Token.Symbol "*"; Token.Symbol "/" ]
    (tokens "+ - * /");
  expect_error (fun () -> tokens "select @")

let test_comments () =
  check_tokens "line comment"
    [ Token.Kw "SELECT"; Token.Int_lit 1 ]
    (tokens "select -- comment here\n 1");
  check_tokens "block comment"
    [ Token.Kw "SELECT"; Token.Int_lit 1 ]
    (tokens "select /* multi\nline */ 1");
  expect_error (fun () -> tokens "/* unterminated")

let test_positions () =
  let toks = Lexer.tokenize "select\n  foo" in
  match toks with
  | [ sel; foo; _eof ] ->
    Alcotest.(check int) "line 1" 1 sel.Token.line;
    Alcotest.(check int) "line 2" 2 foo.Token.line;
    Alcotest.(check int) "col 3" 3 foo.Token.col
  | _ -> Alcotest.fail "unexpected token count"

let suite =
  [
    Alcotest.test_case "keywords and identifiers" `Quick test_keywords_and_idents;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "symbols" `Quick test_symbols;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "positions" `Quick test_positions;
  ]

test/test_sql_edge_cases.ml: Alcotest Array Core Engine Errors Eval Helpers List System Value

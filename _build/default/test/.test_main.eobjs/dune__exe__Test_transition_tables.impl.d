test/test_transition_tables.ml: Alcotest Core Helpers Printf System

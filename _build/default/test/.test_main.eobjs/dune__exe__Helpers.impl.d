test/helpers.ml: Alcotest Core Engine Errors Fmt List QCheck_alcotest Row System Value

test/test_schema.ml: Alcotest Array Core Database Handle Helpers Schema Table

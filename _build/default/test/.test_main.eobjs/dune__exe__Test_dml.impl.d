test/test_dml.ml: Alcotest Array Ast Core Database Eval Handle Helpers List Parser Schema Sqlf Table

test/test_engine.ml: Alcotest Array Ast Core Engine Errors Eval Helpers List Parser Procedures Selection System

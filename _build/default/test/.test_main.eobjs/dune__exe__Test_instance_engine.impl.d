test/test_instance_engine.ml: Alcotest Ast Core Database Errors Eval Helpers Instance_engine List Parser Printf Schema Value

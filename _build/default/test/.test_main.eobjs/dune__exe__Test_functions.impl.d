test/test_functions.ml: Alcotest Ast Core Helpers Parser Pretty System

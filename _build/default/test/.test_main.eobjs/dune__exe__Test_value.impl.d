test/test_value.ml: Alcotest Core Gen Helpers List QCheck Value

test/test_system.ml: Alcotest Core Engine Eval Fmt Helpers List String System Value

test/test_scripts.ml: Alcotest Core Helpers In_channel List System

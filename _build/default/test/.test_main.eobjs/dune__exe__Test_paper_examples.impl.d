test/test_paper_examples.ml: Alcotest Core Engine Helpers System

test/test_lexer.ml: Alcotest Fmt Helpers List Sqlf

test/test_analysis.ml: Alcotest Analysis Ast Core Fmt List Parser Priority Rules String

test/test_properties.ml: Ast Core Database Engine Errors Eval Helpers List Parser Pretty Printf QCheck Row Schema Sqlf String System Table Value

test/test_effect.ml: Alcotest Ast Core Effect Fmt Handle Helpers List QCheck String

test/test_interplay.ml: Alcotest Array Core Engine Helpers List Printf QCheck Random System Value

test/test_constraints.ml: Alcotest Constraints Core Engine Helpers List System Value

test/test_eval.ml: Alcotest Array Core Helpers List System Value

test/test_parser.ml: Alcotest Ast Core Helpers List Parser Pretty

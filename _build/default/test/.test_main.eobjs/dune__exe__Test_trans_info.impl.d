test/test_trans_info.ml: Alcotest Array Ast Core Database Effect Handle Helpers List Printf QCheck Schema Trans_info

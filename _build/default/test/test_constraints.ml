(* Constraint-compiler tests: declarative constraints become production
   rules that maintain them ([CW90] direction, paper Section 6). *)

open Core
open Helpers

let test_not_null () =
  let s = System.create () in
  run s "create table t (a int, b int)";
  List.iter
    (fun def -> ignore (Engine.create_rule (System.engine s) def))
    (Constraints.compile (Constraints.Not_null { table = "t"; column = "a" }));
  Alcotest.(check bool) "good insert" true
    (exec_committed s "insert into t values (1, 1)");
  Alcotest.(check bool) "null rejected" false
    (exec_committed s "insert into t values (null, 1)");
  Alcotest.(check int) "only good row" 1 (int_cell s "select count(*) from t");
  Alcotest.(check bool) "update to null rejected" false
    (exec_committed s "update t set a = null");
  Alcotest.(check bool) "other column may be null" true
    (exec_committed s "insert into t values (2, null)")

let test_unique_via_ddl () =
  (* primary key in CREATE TABLE compiles to a uniqueness rule *)
  let s = System.create () in
  run s "create table t (id int primary key, v string)";
  Alcotest.(check bool) "first" true
    (exec_committed s "insert into t values (1, 'a')");
  Alcotest.(check bool) "duplicate rejected" false
    (exec_committed s "insert into t values (1, 'b')");
  Alcotest.(check int) "one row" 1 (int_cell s "select count(*) from t");
  Alcotest.(check bool) "other key fine" true
    (exec_committed s "insert into t values (2, 'b')");
  Alcotest.(check bool) "update into duplicate rejected" false
    (exec_committed s "update t set id = 1 where id = 2");
  (* a swap within one block never has a duplicate in the final state *)
  Alcotest.(check bool) "swap in one block allowed" true
    (exec_committed s
       "begin; update t set id = 3 where id = 2; update t set id = 2 where id \
        = 1; update t set id = 1 where id = 3; commit")

let test_multi_column_unique () =
  let s = System.create () in
  run s "create table t (a int, b int, unique (a, b))";
  Alcotest.(check bool) "pair 1" true (exec_committed s "insert into t values (1, 1)");
  Alcotest.(check bool) "pair 2" true (exec_committed s "insert into t values (1, 2)");
  Alcotest.(check bool) "dup pair rejected" false
    (exec_committed s "insert into t values (1, 2)")

let test_fk_restrict () =
  let s = System.create () in
  run s "create table dept (dept_no int primary key)";
  run s
    "create table emp (emp_no int, dept_no int references dept (dept_no))";
  run s "insert into dept values (1), (2)";
  Alcotest.(check bool) "valid child" true
    (exec_committed s "insert into emp values (10, 1)");
  Alcotest.(check bool) "orphan rejected" false
    (exec_committed s "insert into emp values (11, 99)");
  Alcotest.(check bool) "null fk allowed" true
    (exec_committed s "insert into emp values (12, null)");
  Alcotest.(check bool) "parent with children protected" false
    (exec_committed s "delete from dept where dept_no = 1");
  Alcotest.(check bool) "childless parent deletable" true
    (exec_committed s "delete from dept where dept_no = 2");
  Alcotest.(check bool) "retargeting fk checked" false
    (exec_committed s "update emp set dept_no = 42 where emp_no = 10")

let test_fk_cascade () =
  let s = System.create () in
  run s "create table dept (dept_no int primary key)";
  run s
    "create table emp (emp_no int, dept_no int, foreign key (dept_no) \
     references dept (dept_no) on delete cascade)";
  run s "insert into dept values (1), (2)";
  run s "insert into emp values (10, 1), (11, 1), (12, 2)";
  Alcotest.(check bool) "cascade commits" true
    (exec_committed s "delete from dept where dept_no = 1");
  Alcotest.(check (list int)) "children cascaded"
    [ 12 ]
    (List.map
       (fun row -> match row with [| Value.Int n |] -> n | _ -> -1)
       (rows s "select emp_no from emp"));
  (* direct orphan insert still rejected *)
  Alcotest.(check bool) "orphan insert rejected" false
    (exec_committed s "insert into emp values (13, 99)")

let test_fk_set_null () =
  let s = System.create () in
  run s "create table dept (dept_no int primary key)";
  run s
    "create table emp (emp_no int, dept_no int, foreign key (dept_no) \
     references dept (dept_no) on delete set null)";
  run s "insert into dept values (1), (2)";
  run s "insert into emp values (10, 1), (11, 2)";
  Alcotest.(check bool) "set-null commits" true
    (exec_committed s "delete from dept where dept_no = 1");
  Alcotest.check value_testable "orphaned fk nulled" vnull
    (cell s "select dept_no from emp where emp_no = 10");
  Alcotest.check value_testable "other child intact" (vi 2)
    (cell s "select dept_no from emp where emp_no = 11")

let test_check_constraint () =
  let s = System.create () in
  run s "create table emp (emp_no int, salary float, check (salary >= 0))";
  Alcotest.(check bool) "ok" true
    (exec_committed s "insert into emp values (1, 100)");
  Alcotest.(check bool) "negative rejected" false
    (exec_committed s "insert into emp values (2, -5)");
  Alcotest.(check bool) "update checked" false
    (exec_committed s "update emp set salary = -1");
  (* null salary: predicate unknown, accepted (SQL CHECK semantics
     reject only definite violations) *)
  Alcotest.(check bool) "null passes check" true
    (exec_committed s "insert into emp values (3, null)")

let test_column_check_constraint () =
  let s = System.create () in
  run s "create table p (qty int check (qty > 0))";
  Alcotest.(check bool) "ok" true (exec_committed s "insert into p values (5)");
  Alcotest.(check bool) "zero rejected" false
    (exec_committed s "insert into p values (0)")

let test_storage_not_null_from_ddl () =
  (* NOT NULL in DDL is enforced by the schema layer directly *)
  let s = System.create () in
  run s "create table t (a int not null)";
  Alcotest.(check bool) "ok" true (exec_committed s "insert into t values (1)");
  expect_error (fun () -> System.exec s "insert into t values (null)");
  Alcotest.(check int) "not stored" 1 (int_cell s "select count(*) from t")

let test_cascade_plus_restrict_interplay () =
  (* two FKs onto the same parent: one cascades, one restricts *)
  let s = System.create () in
  run s "create table p (id int primary key)";
  run s
    "create table kid_c (fk int, foreign key (fk) references p (id) on delete \
     cascade)";
  run s
    "create table kid_r (fk int, foreign key (fk) references p (id) on delete \
     restrict)";
  run s "insert into p values (1), (2)";
  run s "insert into kid_c values (1)";
  run s "insert into kid_r values (2)";
  Alcotest.(check bool) "cascade side deletable" true
    (exec_committed s "delete from p where id = 1");
  Alcotest.(check int) "cascaded" 0 (int_cell s "select count(*) from kid_c");
  Alcotest.(check bool) "restrict side protected" false
    (exec_committed s "delete from p where id = 2")

let test_multi_column_fk_rejected () =
  let s = System.create () in
  run s "create table p (a int, b int)";
  expect_error (fun () ->
      System.exec s
        "create table c (x int, y int, foreign key (x, y) references p (a, b))")

let test_assertion_cross_table () =
  let s = System.create () in
  run s "create table ledger_debit (amount float)";
  run s "create table ledger_credit (amount float)";
  (* the books must balance in every committed state *)
  run s
    "create assertion balanced check (coalesce((select sum(amount) from \
     ledger_debit), 0) = coalesce((select sum(amount) from ledger_credit), 0))";
  (* balanced block commits *)
  Alcotest.(check bool) "balanced pair" true
    (exec_committed s
       "begin; insert into ledger_debit values (100); insert into \
        ledger_credit values (100); commit");
  (* unbalanced block rolls back entirely *)
  Alcotest.(check bool) "unbalanced rejected" false
    (exec_committed s "insert into ledger_debit values (50)");
  Alcotest.(check int) "nothing leaked" 1
    (int_cell s "select count(*) from ledger_debit");
  (* it triggers on either table *)
  Alcotest.(check bool) "credit-only rejected" false
    (exec_committed s "delete from ledger_credit");
  (* drop the assertion and the same change is accepted *)
  run s "drop assertion balanced";
  Alcotest.(check bool) "after drop" true
    (exec_committed s "insert into ledger_debit values (50)")

let test_assertion_updates_trigger () =
  let s = System.create () in
  run s "create table cap (max_total int)";
  run s "create table item (v int)";
  run s "insert into cap values (10)";
  run s
    "create assertion capped check ((select coalesce(sum(v), 0) from item) <= \
     (select max_total from cap))";
  Alcotest.(check bool) "within cap" true
    (exec_committed s "insert into item values (4), (5)");
  Alcotest.(check bool) "over cap" false
    (exec_committed s "insert into item values (2)");
  (* updating the cap itself is also guarded *)
  Alcotest.(check bool) "cap lowered below total" false
    (exec_committed s "update cap set max_total = 5");
  Alcotest.(check bool) "cap raised" true
    (exec_committed s "update cap set max_total = 20")

let test_assertion_without_tables_rejected () =
  let s = System.create () in
  expect_error (fun () -> System.exec s "create assertion silly check (1 = 1)")

let test_names_deterministic () =
  let c = Constraints.Not_null { table = "emp"; column = "salary" } in
  Alcotest.(check string) "name" "nn_emp_salary" (Constraints.name_of c);
  let fk =
    Constraints.Foreign_key
      {
        child = "emp";
        child_column = "dept_no";
        parent = "dept";
        parent_column = "dept_no";
        on_delete = `Cascade;
      }
  in
  Alcotest.(check string) "fk name" "fk_emp_dept_no_dept" (Constraints.name_of fk);
  Alcotest.(check (list (pair string string))) "priority pairs"
    [ ("fk_emp_dept_no_dept_cascade", "fk_emp_dept_no_dept_check") ]
    (Constraints.priority_pairs fk)

let suite =
  [
    Alcotest.test_case "not null" `Quick test_not_null;
    Alcotest.test_case "primary key uniqueness" `Quick test_unique_via_ddl;
    Alcotest.test_case "multi-column unique" `Quick test_multi_column_unique;
    Alcotest.test_case "fk restrict" `Quick test_fk_restrict;
    Alcotest.test_case "fk cascade" `Quick test_fk_cascade;
    Alcotest.test_case "fk set null" `Quick test_fk_set_null;
    Alcotest.test_case "check constraint" `Quick test_check_constraint;
    Alcotest.test_case "column check constraint" `Quick
      test_column_check_constraint;
    Alcotest.test_case "ddl not null uses storage" `Quick
      test_storage_not_null_from_ddl;
    Alcotest.test_case "cascade and restrict interplay" `Quick
      test_cascade_plus_restrict_interplay;
    Alcotest.test_case "multi-column fk rejected" `Quick
      test_multi_column_fk_rejected;
    Alcotest.test_case "cross-table assertion" `Quick test_assertion_cross_table;
    Alcotest.test_case "assertion triggers on updates" `Quick
      test_assertion_updates_trigger;
    Alcotest.test_case "table-free assertion rejected" `Quick
      test_assertion_without_tables_rejected;
    Alcotest.test_case "deterministic rule names" `Quick test_names_deterministic;
  ]

(* The paper's worked examples (3.1–3.3, 4.1–4.3), run verbatim with
   the paper's emp/dept schema and checked against the outcomes the
   paper states.  These are the closest thing the paper has to an
   evaluation; EXPERIMENTS.md indexes them. *)

open Core
open Helpers

(* Example 3.1 rule text, verbatim modulo identifier spelling
   (emp_no/dept_no/mgr_no for the paper's "emp no" etc.). *)
let rule_31 =
  "create rule ex31 when deleted from dept then delete from emp where dept_no \
   in (select dept_no from deleted dept)"

let rule_32 =
  "create rule ex32 when updated emp.salary if (select sum(salary) from new \
   updated emp.salary) > (select sum(salary) from old updated emp.salary) \
   then update emp set salary = 0.95 * salary where dept_no = 2; update emp \
   set salary = 0.85 * salary where dept_no = 3"

let rule_33 =
  "create rule ex33 when inserted into emp or deleted from emp or updated \
   emp.salary or updated emp.dept_no if exists (select * from emp e1 where \
   salary > 2 * (select avg(salary) from emp e2 where e2.dept_no = \
   e1.dept_no)) then delete from emp where emp_no = (select mgr_no from dept \
   where dept_no = 5)"

let rule_41 =
  "create rule ex41 when deleted from emp then delete from emp where dept_no \
   in (select dept_no from dept where mgr_no in (select emp_no from deleted \
   emp)); delete from dept where mgr_no in (select emp_no from deleted emp)"

let rule_42 =
  "create rule ex42 when updated emp.salary if (select avg(salary) from new \
   updated emp.salary) > 50000 then delete from emp where emp_no in (select \
   emp_no from new updated emp.salary) and salary > 80000"

(* Example 3.1: whenever departments are deleted, delete all employees
   in the deleted departments. *)
let test_example_3_1 () =
  let s = paper_system () in
  run s rule_31;
  run s "insert into dept values (1, 100), (2, 200), (3, 300)";
  run s
    "insert into emp values ('a', 1, 10000, 1), ('b', 2, 10000, 2), ('c', 3, \
     10000, 2), ('d', 4, 10000, 3)";
  (* delete two departments in one block: one set-oriented firing *)
  ignore (System.exec_block s "delete from dept where dept_no in (1, 2)");
  Alcotest.(check (list string)) "only dept 3 employees remain" [ "d" ]
    (string_list_cells s "select name from emp");
  let st = Engine.stats (System.engine s) in
  Alcotest.(check int) "single set-oriented firing" 1 st.Engine.rule_firings

(* Example 3.2: if updated salaries increased in total, cut departments
   2 and 3. *)
let test_example_3_2 () =
  let s = paper_system () in
  run s rule_32;
  run s
    "insert into emp values ('d1', 1, 1000, 1), ('d2', 2, 1000, 2), ('d3', 3, \
     1000, 3)";
  (* raise: total of updated salaries exceeds previous total *)
  run s "update emp set salary = salary + 100 where emp_no = 1";
  Alcotest.(check (float 0.01)) "dept2 cut" 950.0
    (float_cell s "select salary from emp where emp_no = 2");
  Alcotest.(check (float 0.01)) "dept3 cut" 850.0
    (float_cell s "select salary from emp where emp_no = 3");
  Alcotest.(check (float 0.01)) "dept1 raised untouched" 1100.0
    (float_cell s "select salary from emp where emp_no = 1")

let test_example_3_2_no_increase () =
  let s = paper_system () in
  run s rule_32;
  run s "insert into emp values ('d2', 2, 1000, 2)";
  (* a pay cut does not satisfy the condition *)
  run s "update emp set salary = salary - 100 where emp_no = 2";
  Alcotest.(check (float 0.01)) "no further cut" 900.0
    (float_cell s "select salary from emp where emp_no = 2")

(* The rule's self-triggering is benign here: its own updates to
   departments 2 and 3 are cuts, so the condition goes false. *)
let test_example_3_2_terminates () =
  let s = paper_system () in
  run s rule_32;
  run s
    "insert into emp values ('x', 1, 1000, 2), ('y', 2, 1000, 3), ('z', 3, \
     1000, 1)";
  run s "update emp set salary = salary * 2 where emp_no = 3";
  (* one firing: 2x raise for dept 1, then cuts; the cuts do not
     re-satisfy the condition *)
  let st = Engine.stats (System.engine s) in
  Alcotest.(check int) "one firing" 1 st.Engine.rule_firings;
  Alcotest.(check (float 0.01)) "dept2 cut once" 950.0
    (float_cell s "select salary from emp where emp_no = 1")

(* Example 3.3: composite transition predicate; delete the manager of
   department 5 when some salary exceeds twice its department average. *)
let test_example_3_3 () =
  let s = paper_system () in
  run s rule_33;
  run s "insert into dept values (5, 50)";
  run s
    "insert into emp values ('mgr5', 50, 100, 5), ('a', 1, 100, 1), ('b', 2, \
     100, 1)";
  Alcotest.(check int) "manager present" 1
    (int_cell s "select count(*) from emp where emp_no = 50");
  (* trigger via update of dept_no; make 'a' an outlier: dept 1 now has
     a=500, b=100: avg=300... need salary > 2*avg; use a bigger raise *)
  run s "update emp set salary = 1000 where emp_no = 1";
  (* dept 1: salaries 1000 and 100, avg 550, 1000 < 1100: no violation *)
  Alcotest.(check int) "still present" 1
    (int_cell s "select count(*) from emp where emp_no = 50");
  run s "insert into emp values ('c', 3, 100, 1)";
  (* dept 1: 1000, 100, 100 -> avg 400; 1000 > 800: violation *)
  Alcotest.(check int) "manager of dept 5 deleted" 0
    (int_cell s "select count(*) from emp where emp_no = 50")

(* Example 4.1: recursive cascaded delete over the management
   hierarchy. *)
let org_setup s =
  (* Jane manages Mary and Jim; Mary manages Bill; Jim manages Sam and
     Sue.  Using departments: dept d is managed by employee m; an
     employee's dept_no is the department of their manager. *)
  run s
    "insert into dept values (1, 100), (2, 200), (3, 300)";
  (* Jane(100) root in dept 0; Mary(200), Jim(300) in dept 1 (managed
     by Jane); Bill in dept 2 (managed by Mary); Sam, Sue in dept 3
     (managed by Jim) *)
  run s
    "insert into emp values ('Jane', 100, 60000, 0), ('Mary', 200, 70000, 1), \
     ('Jim', 300, 40000, 1), ('Bill', 400, 25000, 2), ('Sam', 500, 30000, 3), \
     ('Sue', 600, 30000, 3)"

let test_example_4_1 () =
  let s = paper_system () in
  run s rule_41;
  org_setup s;
  (* deleting Jane cascades through the whole hierarchy *)
  run s "delete from emp where emp_no = 100";
  Alcotest.(check int) "no employees left" 0
    (int_cell s "select count(*) from emp");
  Alcotest.(check int) "no departments left" 0
    (int_cell s "select count(*) from dept");
  let st = Engine.stats (System.engine s) in
  (* firings: {Mary,Jim} then {Bill,Sam,Sue} then the empty check *)
  Alcotest.(check int) "three firings" 3 st.Engine.rule_firings

let test_example_4_1_leaf_delete () =
  let s = paper_system () in
  run s rule_41;
  org_setup s;
  (* deleting a non-manager fires the rule once (no further deletes) *)
  run s "delete from emp where emp_no = 400";
  Alcotest.(check int) "five left" 5 (int_cell s "select count(*) from emp");
  Alcotest.(check int) "departments intact" 3
    (int_cell s "select count(*) from dept")

(* Example 4.2: salary-update control. *)
let test_example_4_2 () =
  let s = paper_system () in
  run s rule_42;
  run s
    "insert into emp values ('Bill', 1, 25000, 1), ('Mary', 2, 70000, 1)";
  (* update Bill 25K->30K and Mary 70K->85K in one block: average of
     updated salaries (30K+85K)/2 = 57.5K > 50K; Mary (>80K) deleted *)
  ignore
    (System.exec_block s
       "update emp set salary = 30000 where emp_no = 1; update emp set salary \
        = 85000 where emp_no = 2");
  Alcotest.(check (list string)) "Mary deleted" [ "Bill" ]
    (string_list_cells s "select name from emp")

let test_example_4_2_below_threshold () =
  let s = paper_system () in
  run s rule_42;
  run s "insert into emp values ('Bill', 1, 25000, 1), ('Mary', 2, 70000, 1)";
  (* average of updated salaries below 50K: nothing happens *)
  run s "update emp set salary = 30000 where emp_no = 1";
  Alcotest.(check int) "both remain" 2 (int_cell s "select count(*) from emp")

(* Example 4.3: both rules together, with R2 (the salary rule) having
   priority over R1 (the cascade rule).  The paper walks through the
   exact interleaving; we check the final state and the firing count. *)
let test_example_4_3 () =
  let s = paper_system () in
  run s rule_41;
  run s rule_42;
  run s "create rule priority ex42 before ex41";
  org_setup s;
  (* one operation block: delete Jane, raise Mary to 85K and Bill to
     40K (updated average (85K+40K)/2 = 62.5K > 50K) *)
  ignore
    (System.exec_block s
       "delete from emp where emp_no = 100; update emp set salary = 85000 \
        where emp_no = 200; update emp set salary = 40000 where emp_no = 400");
  (* R2 fires first deleting Mary (updated and > 80K).  R1 is then
     considered with the composite deleted set {Jane, Mary}: deletes
     Bill and Jim (their managers are Jane or Mary — Bill's department
     2 is managed by Mary, Jim sits in Jane's department 1).  R1 again
     with {Bill, Jim}: deletes Sam and Sue.  Finally nothing more. *)
  Alcotest.(check int) "everyone gone" 0 (int_cell s "select count(*) from emp");
  Alcotest.(check int) "departments gone" 0
    (int_cell s "select count(*) from dept")

(* The same scenario WITHOUT the priority shows order dependence: if R1
   runs first (creation order), Mary is deleted by the cascade before
   R2 considers her, but R2's composite new-updated table still holds
   her updated salary only while she exists; with Mary already gone the
   delete selects nobody over 80K. *)
let test_example_4_3_order_matters () =
  let s = paper_system () in
  run s rule_41;
  run s rule_42;
  org_setup s;
  ignore
    (System.exec_block s
       "delete from emp where emp_no = 100; update emp set salary = 85000 \
        where emp_no = 200; update emp set salary = 40000 where emp_no = 400");
  (* with creation order, ex41 fires first; the final state is still
     everyone-deleted here because the cascade covers the whole tree *)
  Alcotest.(check int) "cascade still empties emp" 0
    (int_cell s "select count(*) from emp")

let suite =
  [
    Alcotest.test_case "example 3.1 cascaded delete" `Quick test_example_3_1;
    Alcotest.test_case "example 3.2 salary raise control" `Quick
      test_example_3_2;
    Alcotest.test_case "example 3.2 no increase" `Quick
      test_example_3_2_no_increase;
    Alcotest.test_case "example 3.2 terminates" `Quick
      test_example_3_2_terminates;
    Alcotest.test_case "example 3.3 composite predicate" `Quick
      test_example_3_3;
    Alcotest.test_case "example 4.1 recursive cascade" `Quick test_example_4_1;
    Alcotest.test_case "example 4.1 leaf delete" `Quick
      test_example_4_1_leaf_delete;
    Alcotest.test_case "example 4.2 salary update control" `Quick
      test_example_4_2;
    Alcotest.test_case "example 4.2 below threshold" `Quick
      test_example_4_2_below_threshold;
    Alcotest.test_case "example 4.3 multi-rule interleaving" `Quick
      test_example_4_3;
    Alcotest.test_case "example 4.3 without priority" `Quick
      test_example_4_3_order_matters;
  ]

(* DML execution and affected-set semantics (paper Section 2.1). *)

open Core
open Helpers

module Dml = Sqlf.Dml

let setup () =
  let db = Database.empty in
  let db =
    Database.create_table db
      (Schema.table "t"
         [
           Schema.column "a" Schema.T_int;
           Schema.column "b" Schema.T_string;
           Schema.column "c" Schema.T_float;
         ])
  in
  db

let exec db sql =
  match Parser.parse_statement_string sql with
  | Ast.Stmt_op op -> Dml.exec_op (Eval.base_resolver db) db op
  | _ -> Alcotest.fail "expected a DML statement"

let exec_tracked db sql =
  match Parser.parse_statement_string sql with
  | Ast.Stmt_op op ->
    Dml.exec_op ~track_selects:true (Eval.base_resolver db) db op
  | _ -> Alcotest.fail "expected a DML statement"

let test_insert_values_affected () =
  let db = setup () in
  let r = exec db "insert into t values (1, 'x', 2.5), (2, 'y', 3.5)" in
  (match r.Dml.affected with
  | Dml.A_insert [ h1; h2 ] ->
    Alcotest.(check string) "table" "t" (Handle.table h1);
    Alcotest.(check bool) "distinct" false (Handle.equal h1 h2)
  | _ -> Alcotest.fail "affected");
  Alcotest.(check int) "rows" 2 (Database.total_rows r.Dml.db)

let test_insert_select_affected () =
  let db = setup () in
  let r = exec db "insert into t values (1, 'x', 1.0), (2, 'y', 2.0)" in
  let r2 = exec r.Dml.db "insert into t (select a + 10, b, c from t)" in
  (match r2.Dml.affected with
  | Dml.A_insert [ _; _ ] -> ()
  | _ -> Alcotest.fail "two inserted");
  Alcotest.(check int) "four rows" 4 (Database.total_rows r2.Dml.db)

let test_insert_self_select_no_loop () =
  (* the embedded select is evaluated against the pre-operation state *)
  let db = setup () in
  let db = (exec db "insert into t values (1, 'x', 1.0)").Dml.db in
  let r = exec db "insert into t (select * from t)" in
  Alcotest.(check int) "doubled once" 2 (Database.total_rows r.Dml.db)

let test_insert_column_list_defaults () =
  let db = Database.empty in
  let db =
    Database.create_table db
      (Schema.table "d"
         [
           Schema.column "a" Schema.T_int;
           Schema.column ~default:(vi 7) "b" Schema.T_int;
         ])
  in
  let r = exec db "insert into d (a) values (1)" in
  (match Database.table r.Dml.db "d" |> Table.rows with
  | [ [| a; b |] ] ->
    Alcotest.check value_testable "a" (vi 1) a;
    Alcotest.check value_testable "default" (vi 7) b
  | _ -> Alcotest.fail "one row");
  expect_error (fun () -> exec db "insert into d (a, nope) values (1, 2)")

let test_delete_affected () =
  let db = setup () in
  let db = (exec db "insert into t values (1, 'x', 1.0), (2, 'y', 2.0), (3, 'z', 3.0)").Dml.db in
  let r = exec db "delete from t where a >= 2" in
  (match r.Dml.affected with
  | Dml.A_delete [ (h1, row1); (_, row2) ] ->
    Alcotest.(check string) "table" "t" (Handle.table h1);
    (* the affected set carries the deleted values *)
    Alcotest.check value_testable "old value" (vs "y") row1.(1);
    Alcotest.check value_testable "old value 2" (vs "z") row2.(1)
  | _ -> Alcotest.fail "two deleted");
  Alcotest.(check int) "one left" 1 (Database.total_rows r.Dml.db)

let test_delete_no_predicate () =
  let db = setup () in
  let db = (exec db "insert into t values (1, 'x', 1.0)").Dml.db in
  let r = exec db "delete from t" in
  Alcotest.(check int) "all gone" 0 (Database.total_rows r.Dml.db)

let test_update_affected_even_when_unchanged () =
  (* Section 2.1: the affected set includes tuples selected for update
     even if the stored value does not change *)
  let db = setup () in
  let db = (exec db "insert into t values (1, 'x', 1.0)").Dml.db in
  let r = exec db "update t set a = a" in
  match r.Dml.affected with
  | Dml.A_update [ (_, [ "a" ], old_row) ] ->
    Alcotest.check value_testable "old recorded" (vi 1) old_row.(0)
  | _ -> Alcotest.fail "one update pair"

let test_update_multiple_columns () =
  let db = setup () in
  let db = (exec db "insert into t values (1, 'x', 1.0)").Dml.db in
  let r = exec db "update t set a = a + 1, c = c * 2.0" in
  (match r.Dml.affected with
  | Dml.A_update [ (_, cols, _) ] ->
    Alcotest.(check (list string)) "columns" [ "a"; "c" ] cols
  | _ -> Alcotest.fail "affected");
  match Database.table r.Dml.db "t" |> Table.rows with
  | [ [| a; _; c |] ] ->
    Alcotest.check value_testable "a" (vi 2) a;
    Alcotest.check value_testable "c" (vf 2.0) c
  | _ -> Alcotest.fail "one row"

let test_update_set_sees_old_values () =
  (* swap semantics: both assignments read the pre-update tuple *)
  let db = setup () in
  let db = (exec db "insert into t values (1, 'x', 5.0)").Dml.db in
  let r = exec db "update t set a = 100, c = a + 0.0" in
  match Database.table r.Dml.db "t" |> Table.rows with
  | [ [| a; _; c |] ] ->
    Alcotest.check value_testable "a new" (vi 100) a;
    Alcotest.check value_testable "c from old a" (vf 1.0) c
  | _ -> Alcotest.fail "one row"

let test_update_subquery_pre_state () =
  (* predicate subqueries see the pre-operation state *)
  let db = setup () in
  let db =
    (exec db "insert into t values (1, 'x', 1.0), (5, 'y', 5.0)").Dml.db
  in
  let r = exec db "update t set a = a + 10 where a < (select max(a) from t)" in
  match r.Dml.affected with
  | Dml.A_update [ (_, _, old_row) ] ->
    Alcotest.check value_testable "only the small one" (vi 1) old_row.(0)
  | _ -> Alcotest.fail "exactly one updated"

let test_update_unknown_column () =
  let db = setup () in
  expect_error (fun () -> exec db "update t set nope = 1")

let test_select_read_set_single_table () =
  let db = setup () in
  let db =
    (exec db "insert into t values (1, 'x', 1.0), (2, 'y', 2.0), (3, 'z', 3.0)").Dml.db
  in
  let r = exec_tracked db "select b from t where a >= 2" in
  (match r.Dml.affected with
  | Dml.A_select pairs ->
    Alcotest.(check int) "precise read set" 2 (List.length pairs);
    List.iter
      (fun (_, cols) ->
        Alcotest.(check bool) "cols include a" true (List.mem "a" cols);
        Alcotest.(check bool) "cols include b" true (List.mem "b" cols);
        Alcotest.(check bool) "cols exclude c" false (List.mem "c" cols))
      pairs
  | _ -> Alcotest.fail "select affected");
  match r.Dml.result with
  | Some rel -> Alcotest.(check int) "rows returned" 2 (List.length rel.Eval.rows)
  | None -> Alcotest.fail "no result rows"

let test_select_read_set_untracked () =
  let db = setup () in
  let db = (exec db "insert into t values (1, 'x', 1.0)").Dml.db in
  let r = exec db "select * from t" in
  match r.Dml.affected with
  | Dml.A_select [] -> ()
  | _ -> Alcotest.fail "untracked select reports nothing"

let suite =
  [
    Alcotest.test_case "insert values affected set" `Quick
      test_insert_values_affected;
    Alcotest.test_case "insert select affected set" `Quick
      test_insert_select_affected;
    Alcotest.test_case "insert from self does not loop" `Quick
      test_insert_self_select_no_loop;
    Alcotest.test_case "insert column list and defaults" `Quick
      test_insert_column_list_defaults;
    Alcotest.test_case "delete affected set carries values" `Quick
      test_delete_affected;
    Alcotest.test_case "delete without predicate" `Quick test_delete_no_predicate;
    Alcotest.test_case "update affected even when value unchanged" `Quick
      test_update_affected_even_when_unchanged;
    Alcotest.test_case "update multiple columns" `Quick
      test_update_multiple_columns;
    Alcotest.test_case "update reads old values" `Quick
      test_update_set_sees_old_values;
    Alcotest.test_case "update subquery sees pre-state" `Quick
      test_update_subquery_pre_state;
    Alcotest.test_case "update unknown column" `Quick test_update_unknown_column;
    Alcotest.test_case "select read set (single table)" `Quick
      test_select_read_set_single_table;
    Alcotest.test_case "select untracked" `Quick test_select_read_set_untracked;
  ]

(* Query evaluator tests: filters, joins, aggregates, grouping,
   subqueries, ordering, distinct, null semantics. *)

open Core
open Helpers

let sample () =
  system
    "create table emp (name string, emp_no int, salary float, dept_no int);\n\
     create table dept (dept_no int, mgr_no int);\n\
     insert into dept values (1, 10), (2, 20), (3, 30);\n\
     insert into emp values ('Jane', 10, 90000, 1), ('Mary', 20, 60000, 2), \
     ('Jim', 30, 55000, 2), ('Bill', 40, 30000, 3), ('Sam', 50, null, 3)"

let names s sql = string_list_cells s sql

let test_scan_and_filter () =
  let s = sample () in
  Alcotest.(check int) "all" 5 (int_cell s "select count(*) from emp");
  Alcotest.(check (list string)) "filter"
    [ "Jane"; "Mary" ]
    (names s "select name from emp where salary > 55000");
  Alcotest.(check (list string)) "neq"
    [ "Jane"; "Bill"; "Sam" ]
    (names s "select name from emp where dept_no <> 2")

let test_null_filter_semantics () =
  let s = sample () in
  (* Sam has null salary: neither selected by > nor by <= *)
  Alcotest.(check int) "gt" 2 (int_cell s "select count(*) from emp where salary > 55000");
  Alcotest.(check int) "le" 2
    (int_cell s "select count(*) from emp where salary <= 55000");
  Alcotest.(check (list string)) "is null" [ "Sam" ]
    (names s "select name from emp where salary is null");
  Alcotest.(check int) "is not null" 4
    (int_cell s "select count(*) from emp where salary is not null");
  (* NOT of unknown is unknown: still not selected *)
  Alcotest.(check int) "not gt" 2
    (int_cell s "select count(*) from emp where not (salary > 55000)")

let test_projection () =
  let s = sample () in
  let cols, rows = System.query s "select name, salary * 2 as double_pay from emp where emp_no = 10" in
  Alcotest.(check (list string)) "headers" [ "name"; "double_pay" ] cols;
  Alcotest.(check rows_testable) "row" [ [| vs "Jane"; vf 180000.0 |] ] rows;
  (* implicit name for expression *)
  let cols, _ = System.query s "select salary + 1 from emp where emp_no = 10" in
  Alcotest.(check int) "one col" 1 (List.length cols)

let test_star_projections () =
  let s = sample () in
  let cols, rows = System.query s "select * from dept order by dept_no" in
  Alcotest.(check (list string)) "star cols" [ "dept_no"; "mgr_no" ] cols;
  Alcotest.(check int) "star rows" 3 (List.length rows);
  let cols, _ =
    System.query s
      "select e.*, d.mgr_no from emp e, dept d where e.dept_no = d.dept_no"
  in
  Alcotest.(check (list string)) "table star"
    [ "name"; "emp_no"; "salary"; "dept_no"; "mgr_no" ]
    cols

let test_join () =
  let s = sample () in
  Alcotest.(check int) "inner join count" 5
    (int_cell s
       "select count(*) from emp e, dept d where e.dept_no = d.dept_no");
  Alcotest.(check int) "cross product" 15
    (int_cell s "select count(*) from emp, dept");
  (* self join with aliases *)
  Alcotest.(check int) "self join" 2
    (int_cell s
       "select count(*) from emp e1, emp e2 where e1.dept_no = e2.dept_no and \
        e1.emp_no < e2.emp_no")

let test_duplicate_from_rejected () =
  let s = sample () in
  expect_error (fun () -> System.query s "select * from emp, emp")

let test_aggregates () =
  let s = sample () in
  Alcotest.(check int) "count star" 5 (int_cell s "select count(*) from emp");
  (* count/avg/sum ignore nulls *)
  Alcotest.(check int) "count col" 4 (int_cell s "select count(salary) from emp");
  Alcotest.(check (float 0.01)) "sum" 235000.0
    (float_cell s "select sum(salary) from emp");
  Alcotest.(check (float 0.01)) "avg over non-null" 58750.0
    (float_cell s "select avg(salary) from emp");
  Alcotest.(check (float 0.01)) "min" 30000.0
    (float_cell s "select min(salary) from emp");
  Alcotest.(check (float 0.01)) "max" 90000.0
    (float_cell s "select max(salary) from emp");
  (* aggregates over empty sets *)
  Alcotest.(check int) "count empty" 0
    (int_cell s "select count(*) from emp where salary > 1000000");
  Alcotest.check value_testable "sum empty is null" vnull
    (cell s "select sum(salary) from emp where salary > 1000000");
  Alcotest.check value_testable "min empty is null" vnull
    (cell s "select min(salary) from emp where 1 = 2")

let test_group_by_having () =
  let s = sample () in
  let _, rows =
    System.query s
      "select dept_no, count(*) as n from emp group by dept_no order by dept_no"
  in
  Alcotest.(check rows_testable) "groups"
    [ [| vi 1; vi 1 |]; [| vi 2; vi 2 |]; [| vi 3; vi 2 |] ]
    rows;
  let _, rows =
    System.query s
      "select dept_no from emp group by dept_no having count(*) > 1 order by \
       dept_no"
  in
  Alcotest.(check rows_testable) "having" [ [| vi 2 |]; [| vi 3 |] ] rows;
  (* grouped aggregate with nulls in group *)
  let _, rows =
    System.query s
      "select dept_no, count(salary) from emp group by dept_no order by dept_no"
  in
  Alcotest.(check rows_testable) "count ignores nulls"
    [ [| vi 1; vi 1 |]; [| vi 2; vi 2 |]; [| vi 3; vi 1 |] ]
    rows

let test_subqueries () =
  let s = sample () in
  (* scalar *)
  Alcotest.(check (list string)) "scalar" [ "Jane" ]
    (names s
       "select name from emp where salary = (select max(salary) from emp)");
  (* in select *)
  Alcotest.(check (list string)) "in" [ "Mary"; "Jim" ]
    (names s
       "select name from emp where dept_no in (select dept_no from dept where \
        mgr_no = 20)");
  (* correlated exists *)
  Alcotest.(check (list string)) "correlated"
    [ "Jane"; "Mary"; "Jim"; "Bill"; "Sam" ]
    (names s
       "select name from emp e where exists (select * from dept d where \
        d.dept_no = e.dept_no)");
  (* correlated scalar: employees above their department average *)
  Alcotest.(check (list string)) "above dept avg" [ "Mary" ]
    (names s
       "select name from emp e1 where salary > (select avg(salary) from emp \
        e2 where e2.dept_no = e1.dept_no)");
  (* scalar subquery with no rows is null *)
  Alcotest.(check int) "empty scalar" 0
    (int_cell s
       "select count(*) from emp where salary = (select salary from emp where \
        1 = 2)");
  (* scalar subquery with two rows errors *)
  expect_error (fun () ->
      System.query s "select name from emp where salary = (select salary from emp)")

let test_in_null_semantics () =
  let s = sample () in
  (* Sam's null salary: "salary in (...)" is unknown, row not selected;
     "salary not in (...)" also unknown *)
  Alcotest.(check int) "in" 0
    (int_cell s "select count(*) from emp where salary in (null)");
  Alcotest.(check int) "not in with null element" 0
    (int_cell s "select count(*) from emp where salary not in (30000, null)");
  Alcotest.(check int) "not in without nulls" 3
    (int_cell s
       "select count(*) from emp where salary not in (30000, null) or salary \
        not in (30000)")

let test_order_by_limit () =
  let s = sample () in
  Alcotest.(check (list string)) "asc nulls first"
    [ "Sam"; "Bill"; "Jim"; "Mary"; "Jane" ]
    (names s "select name from emp order by salary");
  Alcotest.(check (list string)) "desc"
    [ "Jane"; "Mary"; "Jim"; "Bill"; "Sam" ]
    (names s "select name from emp order by salary desc");
  Alcotest.(check (list string)) "two keys"
    [ "Sam"; "Bill"; "Jim"; "Mary"; "Jane" ]
    (names s "select name from emp order by dept_no desc, salary asc");
  Alcotest.(check (list string)) "limit"
    [ "Jane"; "Mary" ]
    (names s "select name from emp order by salary desc limit 2");
  Alcotest.(check (list string)) "limit zero" []
    (names s "select name from emp limit 0")

let test_distinct () =
  let s = sample () in
  Alcotest.(check int) "distinct depts" 3
    (List.length (rows s "select distinct dept_no from emp"));
  Alcotest.(check int) "plain depts" 5
    (List.length (rows s "select dept_no from emp"))

let test_derived_tables () =
  let s = sample () in
  Alcotest.(check int) "derived" 2
    (int_cell s
       "select count(*) from (select name from emp where dept_no = 2) sub");
  Alcotest.(check (list string)) "derived projection" [ "Mary"; "Jim" ]
    (names s "select sub.name from (select name from emp where dept_no = 2) sub")

let test_expressions_in_select () =
  let s = sample () in
  Alcotest.(check string) "concat" "Jane!"
    (match cell s "select name || '!' from emp where emp_no = 10" with
    | Value.Str str -> str
    | _ -> Alcotest.fail "not a string");
  Alcotest.(check int) "case" 2
    (int_cell s
       "select count(*) from emp where case when salary > 55000 then true \
        else false end");
  Alcotest.(check int) "between" 3
    (int_cell s "select count(*) from emp where salary between 30000 and 60000");
  Alcotest.(check int) "like" 3
    (int_cell s "select count(*) from emp where name like 'J%' or name like '%y'")

let test_compound_queries () =
  let s = system "create table a (x int);\ncreate table b (x int)" in
  run s "insert into a values (1), (2), (2), (3)";
  run s "insert into b values (2), (3), (4)";
  let col sql = List.map (fun r -> r.(0)) (rows s sql) in
  Alcotest.(check (list value_testable)) "union dedupes"
    [ vi 1; vi 2; vi 3; vi 4 ]
    (col "select x from a union select x from b order by x");
  Alcotest.(check int) "union all keeps duplicates" 7
    (List.length (rows s "select x from a union all select x from b"));
  Alcotest.(check (list value_testable)) "except"
    [ vi 1 ]
    (col "select x from a except select x from b");
  Alcotest.(check (list value_testable)) "intersect"
    [ vi 2; vi 3 ]
    (col "select x from a intersect select x from b order by x");
  (* chain of three, with limit over the combined result *)
  Alcotest.(check (list value_testable)) "chained with limit"
    [ vi 4; vi 3 ]
    (col
       "select x from a union select x from b union select 9 where 1 = 2 \
        order by x desc limit 2");
  (* arity mismatch *)
  expect_error (fun () ->
      System.query s "select x from a union select x, x from b");
  (* compound inside IN subquery *)
  Alcotest.(check int) "compound subquery" 3
    (int_cell s
       "select count(*) from a where x in (select x from b except select 4)")

let test_select_no_from () =
  let s = sample () in
  let _, rows = System.query s "select 1 + 1, 'x'" in
  Alcotest.(check rows_testable) "constants" [ [| vi 2; vs "x" |] ] rows

let test_empty_table_headers () =
  let s = system "create table t (a int, b string)" in
  let cols, rows = System.query s "select * from t" in
  Alcotest.(check (list string)) "headers survive emptiness" [ "a"; "b" ] cols;
  Alcotest.(check int) "no rows" 0 (List.length rows)

let test_error_cases () =
  let s = sample () in
  expect_error (fun () -> System.query s "select nope from emp");
  expect_error (fun () -> System.query s "select name from nope");
  (* ambiguous column across two tables *)
  expect_error (fun () ->
      System.query s "select dept_no from emp e, dept d where 1 = 1");
  (* aggregate in where *)
  expect_error (fun () ->
      System.query s "select name from emp where count(*) > 1");
  (* unknown qualified column *)
  expect_error (fun () -> System.query s "select e.nope from emp e")

let suite =
  [
    Alcotest.test_case "scan and filter" `Quick test_scan_and_filter;
    Alcotest.test_case "null filter semantics" `Quick test_null_filter_semantics;
    Alcotest.test_case "projection" `Quick test_projection;
    Alcotest.test_case "star projections" `Quick test_star_projections;
    Alcotest.test_case "joins" `Quick test_join;
    Alcotest.test_case "duplicate from rejected" `Quick
      test_duplicate_from_rejected;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "group by / having" `Quick test_group_by_having;
    Alcotest.test_case "subqueries" `Quick test_subqueries;
    Alcotest.test_case "IN null semantics" `Quick test_in_null_semantics;
    Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "derived tables" `Quick test_derived_tables;
    Alcotest.test_case "expressions" `Quick test_expressions_in_select;
    Alcotest.test_case "compound queries" `Quick test_compound_queries;
    Alcotest.test_case "select without from" `Quick test_select_no_from;
    Alcotest.test_case "empty table headers" `Quick test_empty_table_headers;
    Alcotest.test_case "error cases" `Quick test_error_cases;
  ]

(* Tests for per-rule composite transition information (Figure 1's
   init-trans-info / modify-trans-info), exercised directly against
   database states. *)

open Core
open Helpers

let db_with_t () =
  Database.create_table Database.empty
    (Schema.table "t"
       [ Schema.column "a" Schema.T_int; Schema.column "b" Schema.T_string ])

let test_init_insert () =
  let db0 = db_with_t () in
  let db1, h = Database.insert db0 "t" [| vi 1; vs "x" |] in
  ignore db1;
  let ti = Trans_info.init (Effect.of_inserted [ h ]) db0 in
  Alcotest.(check bool) "ins" true (Handle.Set.mem h ti.Trans_info.ins);
  Alcotest.(check bool) "triggered" true
    (Trans_info.triggered ti [ Ast.Tp_inserted "t" ]);
  Alcotest.(check bool) "not deleted" false
    (Trans_info.triggered ti [ Ast.Tp_deleted "t" ])

let test_init_delete_captures_values () =
  let db0 = db_with_t () in
  let db1, h = Database.insert db0 "t" [| vi 1; vs "x" |] in
  let db2 = Database.delete db1 h in
  ignore db2;
  (* old state is db1, where the tuple still exists *)
  let ti = Trans_info.init (Effect.of_deleted [ h ]) db1 in
  Alcotest.check row_testable "value captured" [| vi 1; vs "x" |]
    (Handle.Map.find h ti.Trans_info.del)

let test_init_update_captures_old () =
  let db0 = db_with_t () in
  let db1, h = Database.insert db0 "t" [| vi 1; vs "x" |] in
  let db2 = Database.update db1 h [| vi 2; vs "x" |] in
  ignore db2;
  let ti = Trans_info.init (Effect.of_updated [ (h, [ "a" ]) ]) db1 in
  let entry = Handle.Map.find h ti.Trans_info.upd in
  Alcotest.check row_testable "old row" [| vi 1; vs "x" |] entry.Trans_info.old_row;
  Alcotest.(check bool) "col" true
    (Effect.Col_set.mem "a" entry.Trans_info.upd_cols)

(* insert in transition 1, delete in transition 2: the composite info
   is empty — the rule sees nothing. *)
let test_extend_insert_then_delete () =
  let db0 = db_with_t () in
  let db1, h = Database.insert db0 "t" [| vi 1; vs "x" |] in
  let ti = Trans_info.init (Effect.of_inserted [ h ]) db0 in
  let db2 = Database.delete db1 h in
  ignore db2;
  let ti = Trans_info.extend ti (Effect.of_deleted [ h ]) db1 in
  Alcotest.(check bool) "empty" true (Trans_info.is_empty ti)

(* update in two consecutive transitions: old value is from the start
   of the composite, and columns accumulate. *)
let test_extend_update_keeps_first_old () =
  let db0 = db_with_t () in
  let db1, h = Database.insert db0 "t" [| vi 1; vs "x" |] in
  (* transition A: update a to 2 *)
  let db2 = Database.update db1 h [| vi 2; vs "x" |] in
  let ti = Trans_info.init (Effect.of_updated [ (h, [ "a" ]) ]) db1 in
  (* transition B: update b *)
  let db3 = Database.update db2 h [| vi 2; vs "y" |] in
  ignore db3;
  let ti = Trans_info.extend ti (Effect.of_updated [ (h, [ "b" ]) ]) db2 in
  let entry = Handle.Map.find h ti.Trans_info.upd in
  (* the old row is the pre-composite value (a=1, b=x), not db2's *)
  Alcotest.check row_testable "first old kept" [| vi 1; vs "x" |]
    entry.Trans_info.old_row;
  Alcotest.(check int) "both columns" 2
    (Effect.Col_set.cardinal entry.Trans_info.upd_cols)

(* update then delete across transitions: net delete, with the
   pre-composite value. *)
let test_extend_update_then_delete () =
  let db0 = db_with_t () in
  let db1, h = Database.insert db0 "t" [| vi 1; vs "x" |] in
  let db2 = Database.update db1 h [| vi 99; vs "x" |] in
  let ti = Trans_info.init (Effect.of_updated [ (h, [ "a" ]) ]) db1 in
  let db3 = Database.delete db2 h in
  ignore db3;
  let ti = Trans_info.extend ti (Effect.of_deleted [ h ]) db2 in
  Alcotest.(check bool) "no upd" true (Handle.Map.is_empty ti.Trans_info.upd);
  (* deleted value is the value at the start of the composite (a=1) *)
  Alcotest.check row_testable "pre-composite value" [| vi 1; vs "x" |]
    (Handle.Map.find h ti.Trans_info.del)

(* insert then update across transitions nets to insert. *)
let test_extend_insert_then_update () =
  let db0 = db_with_t () in
  let db1, h = Database.insert db0 "t" [| vi 1; vs "x" |] in
  let ti = Trans_info.init (Effect.of_inserted [ h ]) db0 in
  let db2 = Database.update db1 h [| vi 5; vs "x" |] in
  ignore db2;
  let ti = Trans_info.extend ti (Effect.of_updated [ (h, [ "a" ]) ]) db1 in
  Alcotest.(check bool) "still inserted" true (Handle.Set.mem h ti.Trans_info.ins);
  Alcotest.(check bool) "no upd" true (Handle.Map.is_empty ti.Trans_info.upd);
  Alcotest.(check bool) "triggers insert only" true
    (Trans_info.triggered ti [ Ast.Tp_inserted "t" ]
    && not (Trans_info.triggered ti [ Ast.Tp_updated ("t", None) ]))

(* property: over random valid histories, the effect represented by
   fold-extended trans-info equals the fold-composed effect. *)
let prop_extend_agrees_with_compose =
  let gen st =
    (* build a real database history for table t *)
    let db0 = db_with_t () in
    let open QCheck.Gen in
    let n = int_range 1 15 st in
    let rec go db live steps acc =
      if steps = 0 then List.rev acc
      else
        let choice = int_bound 2 st in
        if choice = 0 || live = [] then begin
          let db', h = Database.insert db "t" [| vi (int_bound 100 st); vs "v" |] in
          go db' (h :: live) (steps - 1) ((db, Effect.of_inserted [ h ]) :: acc)
        end
        else if choice = 1 then begin
          let i = int_bound (List.length live - 1) st in
          let h = List.nth live i in
          let live' = List.filteri (fun j _ -> j <> i) live in
          let db' = Database.delete db h in
          go db' live' (steps - 1) ((db, Effect.of_deleted [ h ]) :: acc)
        end
        else begin
          let i = int_bound (List.length live - 1) st in
          let h = List.nth live i in
          let col = if bool st then "a" else "b" in
          let row = Database.get_row db h in
          let row' =
            if col = "a" then [| vi (int_bound 100 st); row.(1) |]
            else [| row.(0); vs "w" |]
          in
          let db' = Database.update db h row' in
          go db' live (steps - 1) ((db, Effect.of_updated [ (h, [ col ]) ]) :: acc)
        end
    in
    go db0 [] n []
  in
  let arb = QCheck.make ~print:(fun l -> Printf.sprintf "<%d transitions>" (List.length l)) gen in
  QCheck.Test.make ~name:"trans-info effect = composed effect over histories"
    ~count:200 arb (fun history ->
      match history with
      | [] -> true
      | (db0, e0) :: rest ->
        let ti =
          List.fold_left
            (fun ti (db_before, e) -> Trans_info.extend ti e db_before)
            (Trans_info.init e0 db0) rest
        in
        let composed =
          List.fold_left
            (fun acc (_, e) -> Effect.compose acc e)
            e0 rest
        in
        Effect.equal (Trans_info.to_effect ti) composed)

let suite =
  [
    Alcotest.test_case "init insert" `Quick test_init_insert;
    Alcotest.test_case "init delete captures values" `Quick
      test_init_delete_captures_values;
    Alcotest.test_case "init update captures old row" `Quick
      test_init_update_captures_old;
    Alcotest.test_case "extend: insert;delete vanishes" `Quick
      test_extend_insert_then_delete;
    Alcotest.test_case "extend: update;update keeps first old" `Quick
      test_extend_update_keeps_first_old;
    Alcotest.test_case "extend: update;delete nets delete" `Quick
      test_extend_update_then_delete;
    Alcotest.test_case "extend: insert;update stays insert" `Quick
      test_extend_insert_then_update;
    qtest prop_extend_agrees_with_compose;
  ]

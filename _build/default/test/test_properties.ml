(* Cross-cutting property-based tests: random workloads against
   system-level invariants. *)

open Core
open Helpers

module Dml = Sqlf.Dml

(* ------------------------------------------------------------------ *)
(* Random DML workloads over t(a int, b int)                           *)

let t_schema () =
  Schema.table "t"
    [ Schema.column "a" Schema.T_int; Schema.column "b" Schema.T_int ]

let gen_value st =
  let open QCheck.Gen in
  if int_bound 9 st = 0 then Value.Null else Value.Int (int_bound 50 st)

let gen_op st =
  let open QCheck.Gen in
  match int_bound 5 st with
  | 0 | 1 | 2 ->
    let k = 1 + int_bound 4 st in
    let rows =
      List.init k (fun _ -> [ Ast.Lit (gen_value st); Ast.Lit (gen_value st) ])
    in
    Ast.Insert { table = "t"; columns = None; source = `Values rows }
  | 3 ->
    let r = int_bound 50 st in
    Ast.Delete
      {
        table = "t";
        where =
          Some
            (Ast.Cmp
               ( Ast.Lt,
                 Ast.Col { qualifier = None; column = "a" },
                 Ast.Lit (Value.Int r) ));
      }
  | _ ->
    let r = int_bound 50 st in
    Ast.Update
      {
        table = "t";
        sets =
          [ ("b", Ast.Binop (Ast.Add, Ast.Col { qualifier = None; column = "b" },
                             Ast.Lit (Value.Int 1))) ];
        where =
          Some
            (Ast.Cmp
               ( Ast.Ge,
                 Ast.Col { qualifier = None; column = "a" },
                 Ast.Lit (Value.Int r) ));
      }

let gen_block st =
  let open QCheck.Gen in
  let n = 1 + int_bound 5 st in
  List.init n (fun _ -> gen_op st)

let arb_block =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map Pretty.op_str ops))
    gen_block

(* With no rules defined, the engine's transaction machinery must be
   exactly the fold of plain operation execution. *)
let prop_engine_is_dml_without_rules =
  QCheck.Test.make ~name:"engine without rules = plain DML fold" ~count:200
    arb_block (fun ops ->
      let eng = Engine.create (Database.create_table Database.empty (t_schema ())) in
      let outcome, _ = Engine.execute_block eng ops in
      let via_engine = Table.rows (Database.table (Engine.database eng) "t") in
      let db = Database.create_table Database.empty (t_schema ()) in
      let db =
        List.fold_left
          (fun db op -> (Dml.exec_op (Eval.base_resolver db) db op).Dml.db)
          db ops
      in
      let via_dml = Table.rows (Database.table db "t") in
      outcome = Engine.Committed
      && List.length via_engine = List.length via_dml
      && List.for_all2 Row.equal via_engine via_dml)

(* A rule that always rolls back leaves every committed state
   untouched, whatever the block did. *)
let prop_rollback_restores_state =
  QCheck.Test.make ~name:"unconditional rollback rule restores the state"
    ~count:200 arb_block (fun ops ->
      let eng = Engine.create (Database.create_table Database.empty (t_schema ())) in
      (* seed some data without the guard *)
      ignore
        (Engine.execute_block eng
           [
             Ast.Insert
               {
                 table = "t";
                 columns = None;
                 source =
                   `Values
                     [
                       [ Ast.Lit (Value.Int 1); Ast.Lit (Value.Int 1) ];
                       [ Ast.Lit (Value.Int 2); Ast.Lit (Value.Int 2) ];
                     ];
               };
           ]);
      let before = Table.rows (Database.table (Engine.database eng) "t") in
      ignore
        (Engine.create_rule eng
           (match
              Parser.parse_statement_string
                "create rule guard when inserted into t or deleted from t or \
                 updated t then rollback"
            with
           | Ast.Stmt_create_rule def -> def
           | _ -> assert false));
      let outcome, _ = Engine.execute_block eng ops in
      let after = Table.rows (Database.table (Engine.database eng) "t") in
      (* blocks whose net effect is empty commit; others roll back;
         either way the state is unchanged *)
      ignore outcome;
      List.length before = List.length after
      && List.for_all2 Row.equal before after)

(* The divergence guard never leaves a half-done transaction behind. *)
let prop_limit_guard_restores_state =
  QCheck.Test.make ~name:"step-limit guard rolls back cleanly" ~count:50
    QCheck.(int_range 1 30)
    (fun limit ->
      let config = { Engine.default_config with max_steps = limit } in
      let eng =
        Engine.create ~config
          (Database.create_table Database.empty (t_schema ()))
      in
      ignore
        (Engine.create_rule eng
           (match
              Parser.parse_statement_string
                "create rule forever when inserted into t or updated t.b then \
                 update t set b = b + 1"
            with
           | Ast.Stmt_create_rule def -> def
           | _ -> assert false));
      match
        Engine.execute_block eng
          [
            Ast.Insert
              {
                table = "t";
                columns = None;
                source = `Values [ [ Ast.Lit (Value.Int 1); Ast.Lit (Value.Int 0) ] ];
              };
          ]
      with
      | _ -> false (* must diverge *)
      | exception Errors.Error (Errors.Rule_limit_exceeded _) ->
        Table.is_empty (Database.table (Engine.database eng) "t")
        && not (Engine.in_transaction eng))

(* ------------------------------------------------------------------ *)
(* Constraint rules maintain their invariants under random workloads.  *)

let gen_fk_statement st =
  let open QCheck.Gen in
  match int_bound 6 st with
  | 0 ->
    Printf.sprintf "insert into parent values (%d)" (int_bound 8 st)
  | 1 | 2 ->
    Printf.sprintf "insert into child values (%d, %d)" (int_bound 50 st)
      (int_bound 8 st)
  | 3 ->
    Printf.sprintf "delete from parent where id = %d" (int_bound 8 st)
  | 4 ->
    Printf.sprintf "delete from child where fk = %d" (int_bound 8 st)
  | _ ->
    Printf.sprintf "update child set fk = %d where id = %d" (int_bound 8 st)
      (int_bound 50 st)

let arb_fk_workload =
  QCheck.make
    ~print:(fun stmts -> String.concat ";\n" stmts)
    QCheck.Gen.(list_size (int_range 1 25) gen_fk_statement)

let prop_constraints_hold =
  QCheck.Test.make
    ~name:"PK and FK invariants hold after any committed workload" ~count:100
    arb_fk_workload
    (fun stmts ->
      let s = System.create () in
      run s "create table parent (id int primary key)";
      run s
        "create table child (id int primary key, fk int, foreign key (fk) \
         references parent (id) on delete cascade)";
      List.iter
        (fun stmt -> try ignore (System.exec s stmt) with Errors.Error _ -> ())
        stmts;
      (* uniqueness of both keys *)
      let dup table col =
        int_cell s
          (Printf.sprintf
             "select count(*) from (select %s from %s group by %s having \
              count(*) > 1) d"
             col table col)
      in
      (* no orphans *)
      let orphans =
        int_cell s
          "select count(*) from child where fk is not null and fk not in \
           (select id from parent)"
      in
      dup "parent" "id" = 0 && dup "child" "id" = 0 && orphans = 0)

(* ------------------------------------------------------------------ *)
(* The uncorrelated-subquery cache never changes results.              *)

let gen_pred st =
  let open QCheck.Gen in
  let col name = Ast.Col { qualifier = None; column = name } in
  let qcol q name = Ast.Col { qualifier = Some q; column = name } in
  let lit st = Ast.Lit (gen_value st) in
  let rec go depth st =
    match if depth = 0 then int_bound 2 st else int_bound 6 st with
    | 0 -> Ast.Cmp (Ast.Lt, col "a", lit st)
    | 1 -> Ast.Cmp (Ast.Eq, col "b", lit st)
    | 2 -> Ast.Is_null (col "a")
    | 3 -> Ast.And (go (depth - 1) st, go (depth - 1) st)
    | 4 -> Ast.Or (go (depth - 1) st, go (depth - 1) st)
    | 5 ->
      (* uncorrelated IN subquery *)
      Ast.In_select
        ( col "a",
          {
            Ast.distinct = false;
            projections = [ Ast.Proj (col "a", None) ];
            from = [ { Ast.source = Ast.Base "u"; alias = None } ];
            where = Some (Ast.Cmp (Ast.Gt, col "b", lit st));
            group_by = [];
            having = None;
            compounds = [];
            order_by = [];
            limit = None;
          } )
    | _ ->
      (* correlated EXISTS subquery *)
      Ast.Exists
        {
          Ast.distinct = false;
          projections = [ Ast.Star ];
          from = [ { Ast.source = Ast.Base "u"; alias = Some "uu" } ];
          where = Some (Ast.Cmp (Ast.Eq, qcol "uu" "a", qcol "tt" "a"));
          group_by = [];
          having = None;
          compounds = [];
          order_by = [];
          limit = None;
        }
  in
  go 3 st

let arb_query =
  QCheck.make
    ~print:(fun (pred, _) -> Pretty.expr_str pred)
    QCheck.Gen.(
      fun st ->
        let pred = gen_pred st in
        let rows table_seed =
          List.init (5 + int_bound 10 st) (fun i ->
              [| Value.Int ((i * table_seed) mod 13); gen_value st |])
        in
        (pred, (rows 3, rows 5)))

let prop_cache_equivalence =
  QCheck.Test.make
    ~name:"uncorrelated-subquery caching never changes query results"
    ~count:300 arb_query
    (fun (pred, (t_rows, u_rows)) ->
      let db =
        Database.create_table Database.empty (t_schema ())
      in
      let db =
        Database.create_table db
          (Schema.table "u"
             [ Schema.column "a" Schema.T_int; Schema.column "b" Schema.T_int ])
      in
      let db =
        List.fold_left (fun db row -> fst (Database.insert db "t" row)) db t_rows
      in
      let db =
        List.fold_left (fun db row -> fst (Database.insert db "u" row)) db u_rows
      in
      let query =
        {
          Ast.distinct = false;
          projections = [ Ast.Star ];
          from = [ { Ast.source = Ast.Base "t"; alias = Some "tt" } ];
          where = Some pred;
          group_by = [];
          having = None;
          compounds = [];
          order_by = [];
          limit = None;
        }
      in
      let resolve = Eval.base_resolver db in
      let plain = Eval.eval_select resolve query in
      let cached =
        Eval.eval_select ~cache:(Eval.make_cache ()) resolve query
      in
      List.length plain.Eval.rows = List.length cached.Eval.rows
      && List.for_all2 Row.equal plain.Eval.rows cached.Eval.rows)

(* ------------------------------------------------------------------ *)
(* The hash equi-join never changes results or row order.              *)

let prop_hash_join_equivalence =
  let gen st =
    let open QCheck.Gen in
    let rows n seed =
      List.init n (fun i -> [| Value.Int ((i * seed) mod 7); gen_value st |])
    in
    (rows (3 + int_bound 12 st) 3, rows (3 + int_bound 12 st) 5, int_bound 2 st)
  in
  let arb = QCheck.make ~print:(fun _ -> "<join instance>") gen in
  QCheck.Test.make ~name:"hash equi-join = nested loop (rows and order)"
    ~count:300 arb
    (fun (t_rows, u_rows, variant) ->
      let db =
        Database.create_table Database.empty
          (Schema.table "t"
             [ Schema.column "a" Schema.T_int; Schema.column "b" Schema.T_int ])
      in
      let db =
        Database.create_table db
          (Schema.table "u"
             [ Schema.column "a" Schema.T_int; Schema.column "c" Schema.T_int ])
      in
      let db =
        List.fold_left (fun db row -> fst (Database.insert db "t" row)) db t_rows
      in
      let db =
        List.fold_left (fun db row -> fst (Database.insert db "u" row)) db u_rows
      in
      let sql =
        match variant with
        | 0 -> "select t.b, u.c from t, u where t.a = u.a"
        | 1 -> "select t.b, u.c from t, u where t.a = u.a and t.b > u.c"
        | _ ->
          (* three-way chain join *)
          "select t.b from t, u, t t2 where t.a = u.a and u.a = t2.a"
      in
      let query = Parser.parse_select_string sql in
      let resolve = Eval.base_resolver db in
      Eval.join_optimization := true;
      let fast = Eval.eval_select resolve query in
      Eval.join_optimization := false;
      let slow = Eval.eval_select resolve query in
      Eval.join_optimization := true;
      List.length fast.Eval.rows = List.length slow.Eval.rows
      && List.for_all2 Row.equal fast.Eval.rows slow.Eval.rows)

(* ------------------------------------------------------------------ *)
(* Trace consistency.                                                  *)

let prop_trace_matches_stats =
  QCheck.Test.make ~name:"trace firings match engine statistics" ~count:100
    arb_block (fun ops ->
      let eng = Engine.create (Database.create_table Database.empty (t_schema ())) in
      ignore
        (Engine.create_rule eng
           (match
              Parser.parse_statement_string
                "create rule note when deleted from t then insert into t \
                 values (99, 99)"
            with
           | Ast.Stmt_create_rule def -> def
           | _ -> assert false));
      Engine.set_tracing eng true;
      let fired_before = (Engine.stats eng).Engine.rule_firings in
      (match Engine.execute_block eng ops with
      | _ -> ()
      | exception Errors.Error _ -> ());
      let fired = (Engine.stats eng).Engine.rule_firings - fired_before in
      let trace_fired =
        List.length
          (List.filter
             (function Engine.Ev_fired _ -> true | _ -> false)
             (Engine.trace eng))
      in
      fired = trace_fired)

let suite =
  [
    qtest prop_engine_is_dml_without_rules;
    qtest prop_rollback_restores_state;
    qtest prop_limit_guard_restores_state;
    qtest prop_constraints_hold;
    qtest prop_cache_equivalence;
    qtest prop_hash_join_equivalence;
    qtest prop_trace_matches_stats;
  ]

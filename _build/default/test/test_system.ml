(* Facade-level tests: the System API, statement dispatch, result
   rendering, and the execution-trace tooling. *)

open Core
open Helpers

let test_exec_script () =
  let s = System.create () in
  let results =
    System.exec s
      "create table t (a int); insert into t values (1); insert into t values \
       (2); select a from t"
  in
  Alcotest.(check int) "four results" 4 (List.length results);
  match List.rev results with
  | System.Relation rel :: _ ->
    Alcotest.(check int) "two rows" 2 (List.length rel.Eval.rows)
  | _ -> Alcotest.fail "last result should be a relation"

let test_render_relation () =
  let s = system "create table t (a int, name string)" in
  run s "insert into t values (1, 'x'), (22, 'longer')";
  match System.exec_one s "select * from t" with
  | System.Relation rel ->
    let text = System.render_relation rel in
    let lines = String.split_on_char '\n' text in
    Alcotest.(check int) "header + sep + 2 rows + count" 5 (List.length lines);
    Alcotest.(check bool) "row count line" true
      (List.exists (fun l -> l = "(2 rows)") lines)
  | _ -> Alcotest.fail "expected relation"

let test_render_messages () =
  Alcotest.(check string) "msg" "hi" (System.render_result (System.Msg "hi"));
  Alcotest.(check string) "committed" "committed"
    (System.render_result (System.Outcome Engine.Committed));
  Alcotest.(check string) "rolled back" "rolled back"
    (System.render_result (System.Outcome Engine.Rolled_back))

let test_show_and_describe () =
  let s = system "create table emp (name string, salary float not null)" in
  (match System.exec_one s "show tables" with
  | System.Relation rel ->
    Alcotest.(check int) "one table" 1 (List.length rel.Eval.rows)
  | _ -> Alcotest.fail "show tables");
  (match System.exec_one s "describe emp" with
  | System.Relation rel -> (
    Alcotest.(check int) "two columns" 2 (List.length rel.Eval.rows);
    match rel.Eval.rows with
    | [ _; [| _; Value.Str "FLOAT"; Value.Bool true |] ] -> ()
    | _ -> Alcotest.fail "describe shape")
  | _ -> Alcotest.fail "describe");
  run s "create rule r when inserted into emp then rollback";
  match System.exec_one s "show rules" with
  | System.Msg text ->
    Alcotest.(check bool) "rule text" true
      (String.length text > 0 && String.sub text 0 11 = "create rule")
  | _ -> Alcotest.fail "show rules"

let test_query_value () =
  let s = system "create table t (a int)" in
  Alcotest.check value_testable "empty is null" vnull
    (System.query_value s "select a from t");
  run s "insert into t values (7)";
  Alcotest.check value_testable "single cell" (vi 7)
    (System.query_value s "select a from t");
  run s "insert into t values (8)";
  expect_error (fun () -> System.query_value s "select a from t")

let test_exec_block_rejects_ddl () =
  let s = system "create table t (a int)" in
  expect_error (fun () -> System.exec_block s "create table u (b int)")

let test_transaction_statement_errors () =
  let s = system "create table t (a int)" in
  expect_error (fun () -> System.exec s "commit");
  expect_error (fun () -> System.exec s "rollback");
  run s "begin";
  expect_error (fun () -> System.exec s "begin");
  run s "commit"

let test_ddl_inside_transaction_rejected () =
  let s = system "create table t (a int)" in
  run s "begin";
  expect_error (fun () -> System.exec s "create table u (b int)");
  expect_error (fun () -> System.exec s "drop table t");
  run s "rollback"

let test_drop_table_with_rule_rejected () =
  let s = system "create table t (a int)" in
  run s "create rule r when inserted into t then rollback";
  expect_error (fun () -> System.exec s "drop table t");
  run s "drop rule r";
  run s "drop table t"

let test_rule_on_unknown_table_rejected () =
  let s = System.create () in
  expect_error (fun () ->
      System.exec s "create rule r when inserted into ghost then rollback");
  let s2 = system "create table t (a int)" in
  expect_error (fun () ->
      System.exec s2 "create rule r when updated t.ghost then rollback")

let test_trace () =
  let s = system "create table t (a int);\ncreate table log (a int)" in
  run s "create rule r when inserted into t then insert into log (select a from inserted t)";
  let eng = System.engine s in
  Engine.set_tracing eng true;
  run s "insert into t values (1), (2)";
  let trace = Engine.trace eng in
  (match trace with
  | Engine.Ev_external { effect_size = 2 }
    :: Engine.Ev_considered { rule = "r"; condition_held = true }
    :: Engine.Ev_fired { rule = "r"; effect_size = 2 }
    :: rest ->
    Alcotest.(check bool) "ends quiescent" true
      (List.exists (function Engine.Ev_quiescent -> true | _ -> false) rest)
  | _ -> Alcotest.failf "unexpected trace of %d events" (List.length trace));
  (* events render *)
  List.iter
    (fun ev ->
      Alcotest.(check bool) "printable" true
        (String.length (Fmt.str "%a" Engine.pp_event ev) > 0))
    trace

let test_trace_rollback_event () =
  let s = system "create table t (a int)" in
  run s "create rule guard when inserted into t then rollback";
  let eng = System.engine s in
  Engine.set_tracing eng true;
  run s "insert into t values (1)";
  Alcotest.(check bool) "has rollback event" true
    (List.exists
       (function Engine.Ev_rollback { rule = "guard" } -> true | _ -> false)
       (Engine.trace eng))

(* WF89a: boolean combinations of basic transition predicates can be
   encoded with conditions over transition tables. *)
let test_conjunction_of_predicates () =
  (* fire only when BOTH an insert into a AND a delete from b occurred
     in the same transition *)
  let s =
    system
      "create table a (x int);\ncreate table b (x int);\ncreate table log (x \
       int)"
  in
  run s
    "create rule both when inserted into a or deleted from b if exists \
     (select * from inserted a) and exists (select * from deleted b) then \
     insert into log values (1)";
  run s "insert into b values (1), (2)";
  run s "insert into a values (1)";
  Alcotest.(check int) "insert alone: no" 0 (int_cell s "select count(*) from log");
  run s "delete from b where x = 1";
  Alcotest.(check int) "delete alone: no" 0 (int_cell s "select count(*) from log");
  ignore (System.exec_block s "insert into a values (2); delete from b where x = 2");
  Alcotest.(check int) "both together: yes" 1
    (int_cell s "select count(*) from log")

let test_negated_predicate () =
  (* fire on updates of t that did NOT touch column a *)
  let s = system "create table t (a int, b int);\ncreate table log (x int)" in
  run s
    "create rule not_a when updated t if not exists (select * from old \
     updated t.a) then insert into log values (1)";
  run s "insert into t values (1, 1)";
  run s "update t set b = 2";
  Alcotest.(check int) "b-update fires" 1 (int_cell s "select count(*) from log");
  run s "update t set a = 2";
  Alcotest.(check int) "a-update does not" 1
    (int_cell s "select count(*) from log")

let suite =
  [
    Alcotest.test_case "exec script" `Quick test_exec_script;
    Alcotest.test_case "render relation" `Quick test_render_relation;
    Alcotest.test_case "render messages" `Quick test_render_messages;
    Alcotest.test_case "show and describe" `Quick test_show_and_describe;
    Alcotest.test_case "query_value" `Quick test_query_value;
    Alcotest.test_case "exec_block rejects DDL" `Quick
      test_exec_block_rejects_ddl;
    Alcotest.test_case "transaction statement errors" `Quick
      test_transaction_statement_errors;
    Alcotest.test_case "DDL inside transaction rejected" `Quick
      test_ddl_inside_transaction_rejected;
    Alcotest.test_case "drop table with rule rejected" `Quick
      test_drop_table_with_rule_rejected;
    Alcotest.test_case "rule on unknown table rejected" `Quick
      test_rule_on_unknown_table_rejected;
    Alcotest.test_case "execution trace" `Quick test_trace;
    Alcotest.test_case "trace rollback event" `Quick test_trace_rollback_event;
    Alcotest.test_case "conjunctive trigger encoding (WF89a)" `Quick
      test_conjunction_of_predicates;
    Alcotest.test_case "negated trigger encoding (WF89a)" `Quick
      test_negated_predicate;
  ]

(* Static rule analysis tests (Section 6 direction): may-trigger graph,
   loop warnings, order-dependence warnings. *)

open Core

let parse_rule seq sql =
  match Parser.parse_statement_string sql with
  | Ast.Stmt_create_rule def -> Rules.Rule.create ~seq def
  | _ -> Alcotest.fail "expected a rule"

let rules_of sqls = List.mapi (fun i sql -> parse_rule (i + 1) sql) sqls

let edge_exists report a b =
  List.exists
    (fun e -> e.Analysis.from_rule = a && e.Analysis.to_rule = b)
    report.Analysis.graph

let test_may_trigger_edges () =
  let rules =
    rules_of
      [
        "create rule r1 when inserted into a then insert into b values (1)";
        "create rule r2 when inserted into b then update c set x = 1";
        "create rule r3 when updated c.x then delete from a";
        "create rule r4 when updated c.y then delete from a";
        "create rule r5 when deleted from a then insert into a values (1)";
      ]
  in
  let report = Analysis.analyze rules in
  Alcotest.(check bool) "r1->r2" true (edge_exists report "r1" "r2");
  Alcotest.(check bool) "r2->r3" true (edge_exists report "r2" "r3");
  (* r2 updates column x, so it must not edge to the y-rule *)
  Alcotest.(check bool) "r2 !-> r4" false (edge_exists report "r2" "r4");
  Alcotest.(check bool) "r3 !-> r1 (delete vs insert)" false
    (edge_exists report "r3" "r1");
  Alcotest.(check bool) "r3->r5" true (edge_exists report "r3" "r5");
  Alcotest.(check bool) "r5->r1" true (edge_exists report "r5" "r1");
  (* the r1->r2->r3->r5->r1 cycle is reported *)
  Alcotest.(check bool) "cycle reported" true
    (report.Analysis.potential_loops <> [])

let test_self_loop_detected () =
  (* the paper's Example 4.1 rule is self-triggering *)
  let rules =
    rules_of
      [
        "create rule ex41 when deleted from emp then delete from emp where \
         dept_no in (select dept_no from dept where mgr_no in (select emp_no \
         from deleted emp)); delete from dept where mgr_no in (select emp_no \
         from deleted emp)";
      ]
  in
  let report = Analysis.analyze rules in
  Alcotest.(check int) "one loop" 1 (List.length report.Analysis.potential_loops);
  Alcotest.(check (list string)) "self" [ "ex41" ]
    (List.hd report.Analysis.potential_loops)

let test_two_rule_cycle () =
  let rules =
    rules_of
      [
        "create rule ping when inserted into a then insert into b values (1)";
        "create rule pong when inserted into b then insert into a values (1)";
      ]
  in
  let report = Analysis.analyze rules in
  Alcotest.(check bool) "cycle found" true
    (List.exists
       (fun c -> List.sort compare c = [ "ping"; "pong" ])
       report.Analysis.potential_loops)

let test_no_false_loop () =
  let rules =
    rules_of
      [
        "create rule r1 when inserted into a then insert into b values (1)";
        "create rule r2 when inserted into b then insert into c values (1)";
      ]
  in
  let report = Analysis.analyze rules in
  Alcotest.(check int) "acyclic" 0 (List.length report.Analysis.potential_loops)

let test_rollback_breaks_cycle () =
  (* a rollback action performs no database operations *)
  let rules =
    rules_of
      [
        "create rule r1 when inserted into a then rollback";
      ]
  in
  let report = Analysis.analyze rules in
  Alcotest.(check int) "no edges" 0 (List.length report.Analysis.graph)

let test_order_conflicts () =
  let r1 =
    "create rule w1 when inserted into t then update t set a = 1"
  in
  let r2 =
    "create rule w2 when inserted into t then update t set a = 2"
  in
  let rules = rules_of [ r1; r2 ] in
  (* unordered: both write table t -> conflict *)
  let report = Analysis.analyze rules in
  Alcotest.(check int) "conflict" 1 (List.length report.Analysis.order_conflicts);
  (* declaring a priority silences the warning *)
  let prio = Priority.declare Priority.empty ~high:"w1" ~low:"w2" in
  let report = Analysis.analyze ~priorities:prio rules in
  Alcotest.(check int) "ordered" 0 (List.length report.Analysis.order_conflicts)

let test_read_write_conflict () =
  let rules =
    rules_of
      [
        "create rule reader when inserted into t then insert into log \
         (select count(*) from emp)";
        "create rule writer when inserted into t then delete from emp";
      ]
  in
  let report = Analysis.analyze rules in
  Alcotest.(check int) "read/write conflict" 1
    (List.length report.Analysis.order_conflicts)

let test_disjoint_rules_no_conflict () =
  let rules =
    rules_of
      [
        "create rule ra when inserted into t then insert into a values (1)";
        "create rule rb when inserted into t then insert into b values (1)";
      ]
  in
  let report = Analysis.analyze rules in
  Alcotest.(check int) "no conflict" 0
    (List.length report.Analysis.order_conflicts)

let test_call_action_is_conservative () =
  let rules =
    rules_of
      [
        "create rule proc when inserted into t then call something";
        "create rule other when inserted into u then insert into v values (1)";
      ]
  in
  let report = Analysis.analyze rules in
  (* a call action may do anything: edges to every rule, conflicts with
     everyone *)
  Alcotest.(check bool) "edge to other" true (edge_exists report "proc" "other");
  Alcotest.(check bool) "conflict" true
    (List.length report.Analysis.order_conflicts >= 1)

let test_report_printing () =
  let rules =
    rules_of
      [ "create rule r when inserted into a then insert into a values (1)" ]
  in
  let report = Analysis.analyze rules in
  let text = Fmt.str "%a" Analysis.pp_report report in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the rule" true (contains text "r -> r");
  Alcotest.(check bool) "has loop section" true (contains text "potential loops")

let suite =
  [
    Alcotest.test_case "may-trigger edges" `Quick test_may_trigger_edges;
    Alcotest.test_case "self-loop detected" `Quick test_self_loop_detected;
    Alcotest.test_case "two-rule cycle" `Quick test_two_rule_cycle;
    Alcotest.test_case "no false loop" `Quick test_no_false_loop;
    Alcotest.test_case "rollback has no writes" `Quick test_rollback_breaks_cycle;
    Alcotest.test_case "order conflicts" `Quick test_order_conflicts;
    Alcotest.test_case "read/write conflict" `Quick test_read_write_conflict;
    Alcotest.test_case "disjoint rules no conflict" `Quick
      test_disjoint_rules_no_conflict;
    Alcotest.test_case "call action conservative" `Quick
      test_call_action_is_conservative;
    Alcotest.test_case "report printing" `Quick test_report_printing;
  ]

(* Tests for the instance-oriented (tuple-at-a-time) baseline engine,
   including the semantic differences from set-oriented execution that
   the paper calls out. *)

open Core
open Helpers

let parse_rule sql =
  match Parser.parse_statement_string sql with
  | Ast.Stmt_create_rule def -> def
  | _ -> Alcotest.fail "expected a rule"

let parse_ops sql =
  List.map
    (function
      | Ast.Stmt_op op -> op
      | _ -> Alcotest.fail "expected DML")
    (Parser.parse_script sql)

let make_instance_system ?config tables =
  let ie = Instance_engine.create ?config Database.empty in
  List.iter
    (fun (name, cols) ->
      Instance_engine.create_table ie (Schema.table name cols))
    tables;
  ie

let t_table = [ Schema.column "a" Schema.T_int; Schema.column "b" Schema.T_string ]
let log_table = [ Schema.column "n" Schema.T_int ]

let count ie table =
  match
    (Instance_engine.query ie
       (Parser.parse_select_string (Printf.sprintf "select count(*) from %s" table)))
      .Eval.rows
  with
  | [ [| Value.Int n |] ] -> n
  | _ -> Alcotest.fail "count"

let test_per_row_firing () =
  let ie = make_instance_system [ ("t", t_table); ("log", log_table) ] in
  ignore
    (Instance_engine.create_rule ie
       (parse_rule
          "create rule audit when inserted into t then insert into log \
           (select a from inserted t)"));
  let outcome =
    Instance_engine.execute_block ie
      (parse_ops "insert into t values (1, 'x'), (2, 'y'), (3, 'z')")
  in
  Alcotest.(check bool) "committed" true (outcome = Instance_engine.Committed);
  (* three separate firings, one per row *)
  Alcotest.(check int) "log rows" 3 (count ie "log");
  Alcotest.(check int) "three firings" 3
    (Instance_engine.stats ie).Instance_engine.rule_firings

let test_transition_tables_are_singletons () =
  let ie = make_instance_system [ ("t", t_table); ("log", log_table) ] in
  ignore
    (Instance_engine.create_rule ie
       (parse_rule
          "create rule probe when inserted into t then insert into log values \
           ((select count(*) from inserted t))"));
  ignore
    (Instance_engine.execute_block ie
       (parse_ops "insert into t values (1, 'x'), (2, 'y')"));
  (* each firing saw exactly one tuple *)
  match
    (Instance_engine.query ie (Parser.parse_select_string "select n from log")).Eval.rows
  with
  | [ [| Value.Int 1 |]; [| Value.Int 1 |] ] -> ()
  | rows -> Alcotest.failf "unexpected log: %d rows" (List.length rows)

(* The paper's point: a set-oriented condition (aggregate over the set
   of changes) is not expressible per-row — the instance engine
   evaluates it per singleton and behaves differently. *)
let test_set_condition_differs () =
  (* set-oriented: average of the two updated salaries (150) > 100 ->
     rule fires.  instance-oriented: each row checked alone: 100 and
     200; only the 200 row passes. *)
  let emp_cols =
    [ Schema.column "id" Schema.T_int; Schema.column "salary" Schema.T_float ]
  in
  let rule_sql =
    "create rule r when updated e.salary if (select avg(salary) from new \
     updated e.salary) > 100 then insert into log values ((select count(*) \
     from new updated e.salary))"
  in
  (* set-oriented run *)
  let s =
    system "create table e (id int, salary float);\ncreate table log (n int)"
  in
  run s rule_sql;
  run s "insert into e values (1, 50), (2, 100)";
  run s "update e set salary = salary * 2";
  Alcotest.(check rows_testable) "set-oriented: one firing over both"
    [ [| vi 2 |] ]
    (rows s "select n from log");
  (* instance-oriented run *)
  let ie = make_instance_system [ ("e", emp_cols); ("log", log_table) ] in
  ignore (Instance_engine.create_rule ie (parse_rule rule_sql));
  ignore (Instance_engine.execute_block ie (parse_ops "insert into e values (1, 50), (2, 100)"));
  ignore (Instance_engine.execute_block ie (parse_ops "update e set salary = salary * 2"));
  match
    (Instance_engine.query ie (Parser.parse_select_string "select n from log")).Eval.rows
  with
  | [ [| Value.Int 1 |] ] -> () (* only the 200-salary row fired, alone *)
  | rows -> Alcotest.failf "instance log had %d rows" (List.length rows)

let test_cascading_depth_first () =
  let ie = make_instance_system [ ("t", t_table); ("log", log_table) ] in
  ignore
    (Instance_engine.create_rule ie
       (parse_rule
          "create rule casc when inserted into t if (select count(*) from \
           t) < 4 then insert into t (select a + 1, b from inserted t)"));
  ignore (Instance_engine.execute_block ie (parse_ops "insert into t values (1, 'x')"));
  Alcotest.(check int) "chain of inserts" 4 (count ie "t")

let test_rollback_action () =
  let ie = make_instance_system [ ("t", t_table) ] in
  ignore
    (Instance_engine.create_rule ie
       (parse_rule
          "create rule guard when inserted into t if exists (select * from \
           inserted t where a < 0) then rollback"));
  let outcome =
    Instance_engine.execute_block ie
      (parse_ops "insert into t values (1, 'x'); insert into t values (-1, 'y')")
  in
  Alcotest.(check bool) "rolled back" true (outcome = Instance_engine.Rolled_back);
  Alcotest.(check int) "both undone" 0 (count ie "t")

let test_divergence_guard () =
  let config = { Instance_engine.max_steps = 10 } in
  let ie = make_instance_system ~config [ ("t", t_table) ] in
  ignore
    (Instance_engine.create_rule ie
       (parse_rule
          "create rule forever when inserted into t then insert into t \
           (select a + 1, b from inserted t)"));
  (match
     Instance_engine.execute_block ie (parse_ops "insert into t values (1, 'x')")
   with
  | _ -> Alcotest.fail "expected divergence error"
  | exception Errors.Error (Errors.Rule_limit_exceeded _) -> ());
  Alcotest.(check int) "restored" 0 (count ie "t")

let test_stale_instance_skipped () =
  (* rule one deletes high rows; rule two would fire per inserted row
     but must skip rows already deleted *)
  let ie = make_instance_system [ ("t", t_table); ("log", log_table) ] in
  ignore
    (Instance_engine.create_rule ie
       (parse_rule "create rule censor when inserted into t then delete from t where a > 10"));
  ignore
    (Instance_engine.create_rule ie
       (parse_rule
          "create rule audit when inserted into t then insert into log \
           (select a from inserted t)"));
  ignore
    (Instance_engine.execute_block ie (parse_ops "insert into t values (50, 'x')"));
  (* censor (defined first) deleted the row before audit considered it *)
  Alcotest.(check int) "no audit of dead row" 0 (count ie "log")

let suite =
  [
    Alcotest.test_case "per-row firing" `Quick test_per_row_firing;
    Alcotest.test_case "singleton transition tables" `Quick
      test_transition_tables_are_singletons;
    Alcotest.test_case "set condition differs from per-row" `Quick
      test_set_condition_differs;
    Alcotest.test_case "depth-first cascading" `Quick test_cascading_depth_first;
    Alcotest.test_case "rollback action" `Quick test_rollback_action;
    Alcotest.test_case "divergence guard" `Quick test_divergence_guard;
    Alcotest.test_case "stale instances skipped" `Quick
      test_stale_instance_skipped;
  ]

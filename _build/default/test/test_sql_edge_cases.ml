(* Edge cases across the SQL pipeline and failure injection into rule
   processing. *)

open Core
open Helpers

let test_keyword_case_insensitive () =
  let s = system "CREATE TABLE t (a INT)" in
  run s "InSeRt InTo t VaLuEs (1)";
  Alcotest.(check int) "mixed case works" 1
    (int_cell s "SELECT COUNT(*) FROM t")

let test_identifier_case_sensitive () =
  let s = system "create table casing (a int)" in
  expect_error (fun () -> System.query s "select a from CASING")

let test_strings_with_quotes () =
  let s = system "create table t (v string)" in
  run s "insert into t values ('it''s'), ('a''b''c')";
  Alcotest.(check int) "quoted match" 1
    (int_cell s "select count(*) from t where v = 'it''s'");
  (* round trip through rendering *)
  match System.exec_one s "select v from t where v = 'a''b''c'" with
  | System.Relation rel ->
    Alcotest.check rows_testable "stored exactly" [ [| vs "a'b'c" |] ]
      rel.Eval.rows
  | _ -> Alcotest.fail "relation"

let test_case_expression_semantics () =
  let s = system "create table t (a int)" in
  run s "insert into t values (1), (2), (null)";
  (* CASE without ELSE yields NULL *)
  Alcotest.(check int) "case null branch" 1
    (int_cell s
       "select count(*) from t where case when a = 1 then true end is null \
        and a = 2");
  (* nested case *)
  Alcotest.(check int) "nested case" 1
    (int_cell s
       "select count(*) from t where case when a is null then 'n' else case \
        when a = 1 then 'one' else 'other' end end = 'one'")

let test_runtime_type_errors_propagate () =
  let s = system "create table t (a int, v string)" in
  run s "insert into t values (1, 'x')";
  expect_error (fun () -> System.query s "select a + v from t");
  expect_error (fun () -> System.query s "select a / 0 from t");
  expect_error (fun () -> System.query s "select a from t where v > 3")

let test_insert_arity_and_types_via_sql () =
  let s = system "create table t (a int, v string)" in
  expect_error (fun () -> System.exec s "insert into t values (1)");
  expect_error (fun () -> System.exec s "insert into t values (1, 2)");
  expect_error (fun () -> System.exec s "insert into t values ('x', 'y')");
  Alcotest.(check int) "nothing stored" 0 (int_cell s "select count(*) from t")

let test_numeric_coercion_round_trip () =
  let s = system "create table t (f float, i int)" in
  run s "insert into t values (1, 2)";
  (* int literal coerced into float column *)
  Alcotest.check value_testable "coerced" (vf 1.0) (cell s "select f from t");
  (* mixed comparison *)
  Alcotest.(check int) "int = float" 1
    (int_cell s "select count(*) from t where f = 1 and i = 2.0")

let test_boolean_columns () =
  let s = system "create table t (flag bool, n int)" in
  run s "insert into t values (true, 1), (false, 2), (null, 3)";
  Alcotest.(check int) "where flag" 1
    (int_cell s "select count(*) from t where flag = true");
  Alcotest.(check int) "where flag = false" 1
    (int_cell s "select count(*) from t where flag = false");
  Alcotest.(check int) "null flag unknown" 1
    (int_cell s "select count(*) from t where flag is null")

let test_deep_subquery_nesting () =
  let s = system "create table t (a int)" in
  run s "insert into t values (1), (2), (3), (4)";
  Alcotest.(check int) "four levels" 1
    (int_cell s
       "select count(*) from t where a = (select max(a) from t where a in \
        (select a from t where a < (select max(a) from t)))")

let test_group_by_expression () =
  let s = system "create table t (a int)" in
  run s "insert into t values (1), (2), (3), (4), (5)";
  let _, rows =
    System.query s
      "select a % 2 as parity, count(*) as n from t group by a % 2 order by \
       parity"
  in
  Alcotest.(check rows_testable) "parity groups"
    [ [| vi 0; vi 2 |]; [| vi 1; vi 3 |] ]
    rows

let test_having_without_group_by () =
  let s = system "create table t (a int)" in
  run s "insert into t values (1), (2)";
  Alcotest.(check int) "global group kept" 1
    (List.length (rows s "select sum(a) from t having count(*) = 2"));
  Alcotest.(check int) "global group filtered" 0
    (List.length (rows s "select sum(a) from t having count(*) > 5"))

let test_order_by_expression_and_big_limit () =
  let s = system "create table t (a int)" in
  run s "insert into t values (1), (3), (2)";
  Alcotest.(check (list string)) "order by -a"
    [ "3"; "2"; "1" ]
    (List.map
       (fun r -> Value.to_display r.(0))
       (rows s "select a from t order by 0 - a limit 100"))

let test_aggregate_empty_group_by () =
  let s = system "create table t (a int, g int)" in
  (* group by over an empty table yields no groups *)
  Alcotest.(check int) "no groups" 0
    (List.length (rows s "select g, count(*) from t group by g"));
  (* but a global aggregate yields one row *)
  Alcotest.(check int) "one global row" 1
    (List.length (rows s "select count(*) from t"))

let test_like_edge_patterns () =
  let s = system "create table t (v string)" in
  run s "insert into t values ('100%'), ('abc'), ('')";
  (* '%%' is two wildcards, not an escape: matches everything *)
  Alcotest.(check int) "double percent matches all" 3
    (int_cell s "select count(*) from t where v like '%%'");
  Alcotest.(check int) "percent then literal" 1
    (int_cell s "select count(*) from t where v like '%0^%' or v like '100_'");
  Alcotest.(check int) "empty matches empty" 1
    (int_cell s "select count(*) from t where v like ''")

(* ---- failure injection into rule processing ---- *)

let test_error_in_rule_action_aborts_txn () =
  let s = system "create table t (a int);\ncreate table log (a int)" in
  run s "insert into t values (1)";
  (* the rule's action divides by zero at run time *)
  run s
    "create rule boom when inserted into t then insert into log (select a / \
     (a - a) from inserted t)";
  (match System.exec s "insert into t values (2)" with
  | _ -> Alcotest.fail "expected error"
  | exception Errors.Error _ -> ());
  Alcotest.(check int) "block rolled back" 1
    (int_cell s "select count(*) from t");
  Alcotest.(check bool) "engine reusable" false
    (Engine.in_transaction (System.engine s));
  (* dropping the bad rule restores service *)
  run s "drop rule boom";
  run s "insert into t values (3)";
  Alcotest.(check int) "working again" 2 (int_cell s "select count(*) from t")

let test_error_in_rule_condition_aborts_txn () =
  let s = system "create table t (a int)" in
  run s
    "create rule badcond when inserted into t if (select a from inserted t) > \
     0 then rollback";
  run s "insert into t values (1)";
  (* single row: scalar subquery fine; two rows: scalar subquery error *)
  (match System.exec s "insert into t values (2), (3)" with
  | _ -> Alcotest.fail "expected scalar subquery error"
  | exception Errors.Error _ -> ());
  Alcotest.(check int) "rolled back" 0 (int_cell s "select count(*) from t")

let test_exception_in_procedure_aborts_txn () =
  let s = system "create table t (a int)" in
  System.register_procedure s "explode" (fun _ -> failwith "procedure bug");
  run s "create rule r when inserted into t then call explode";
  (match System.exec s "insert into t values (1)" with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "rolled back" 0 (int_cell s "select count(*) from t");
  Alcotest.(check bool) "no dangling transaction" false
    (Engine.in_transaction (System.engine s))

let test_rollback_statement_without_rules () =
  let s = system "create table t (a int)" in
  run s "begin";
  run s "insert into t values (1)";
  run s "insert into t values (2)";
  run s "rollback";
  Alcotest.(check int) "both undone" 0 (int_cell s "select count(*) from t");
  (* a new transaction works normally *)
  run s "insert into t values (3)";
  Alcotest.(check int) "fresh txn fine" 1 (int_cell s "select count(*) from t")

let test_empty_transaction_commits () =
  let s = system "create table t (a int)" in
  run s "create rule r when inserted into t then rollback";
  run s "begin";
  (match System.exec s "commit" with
  | [ System.Outcome Engine.Committed ] -> ()
  | _ -> Alcotest.fail "empty txn should commit");
  Alcotest.(check bool) "closed" false (Engine.in_transaction (System.engine s))

let suite =
  [
    Alcotest.test_case "keywords case-insensitive" `Quick
      test_keyword_case_insensitive;
    Alcotest.test_case "identifiers case-sensitive" `Quick
      test_identifier_case_sensitive;
    Alcotest.test_case "strings with quotes" `Quick test_strings_with_quotes;
    Alcotest.test_case "case expressions" `Quick test_case_expression_semantics;
    Alcotest.test_case "runtime type errors" `Quick
      test_runtime_type_errors_propagate;
    Alcotest.test_case "insert arity and types" `Quick
      test_insert_arity_and_types_via_sql;
    Alcotest.test_case "numeric coercion" `Quick test_numeric_coercion_round_trip;
    Alcotest.test_case "boolean columns" `Quick test_boolean_columns;
    Alcotest.test_case "deep subquery nesting" `Quick test_deep_subquery_nesting;
    Alcotest.test_case "group by expression" `Quick test_group_by_expression;
    Alcotest.test_case "having without group by" `Quick
      test_having_without_group_by;
    Alcotest.test_case "order by expression / big limit" `Quick
      test_order_by_expression_and_big_limit;
    Alcotest.test_case "aggregates over empty tables" `Quick
      test_aggregate_empty_group_by;
    Alcotest.test_case "like edge patterns" `Quick test_like_edge_patterns;
    Alcotest.test_case "error in rule action aborts" `Quick
      test_error_in_rule_action_aborts_txn;
    Alcotest.test_case "error in rule condition aborts" `Quick
      test_error_in_rule_condition_aborts_txn;
    Alcotest.test_case "exception in procedure aborts" `Quick
      test_exception_in_procedure_aborts_txn;
    Alcotest.test_case "rollback statement" `Quick
      test_rollback_statement_without_rules;
    Alcotest.test_case "empty transaction commits" `Quick
      test_empty_transaction_commits;
  ]

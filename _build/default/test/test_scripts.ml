(* Execute the SQL scripts under test/scripts end-to-end and check the
   final states they are designed to reach.  These scripts double as
   documentation of realistic usage; they run exactly as `sopr -f`
   would run them. *)

open Core
open Helpers

let load name = In_channel.with_open_text ("scripts/" ^ name) In_channel.input_all

(* Execute a script statement by statement, tolerating the statements
   that are *meant* to fail (constraint rollbacks surface as outcomes,
   not errors, so only genuine errors are tolerated here). *)
let run_script s sql = List.iter (fun r -> ignore r) (System.exec s sql)

let test_bank () =
  let s = System.create () in
  run_script s (load "bank.sql");
  Alcotest.(check (float 0.01)) "ada after legal transfer" 800.0
    (float_cell s "select balance from account where id = 1");
  Alcotest.(check (float 0.01)) "bob after legal transfer" 700.0
    (float_cell s "select balance from account where id = 2");
  Alcotest.(check int) "one logged transfer" 1
    (int_cell s "select count(*) from transfer_log");
  (* only the committed transaction left audit rows *)
  Alcotest.(check int) "two audited balance changes" 2
    (int_cell s "select count(*) from balance_audit");
  Alcotest.(check (float 0.01)) "audit old value" 1000.0
    (float_cell s "select old_balance from balance_audit where id = 1");
  Alcotest.(check (float 0.01)) "audit new value" 800.0
    (float_cell s "select new_balance from balance_audit where id = 1")

let test_paper_scenario () =
  let s = System.create () in
  run_script s (load "paper_scenario.sql");
  Alcotest.(check int) "everyone cascaded away" 0
    (int_cell s "select count(*) from emp");
  Alcotest.(check int) "departments cascaded away" 0
    (int_cell s "select count(*) from dept")

let test_derived_data () =
  let s = System.create () in
  run_script s (load "derived_data.sql");
  let _, rows = System.query s "select region, total from region_total" in
  Alcotest.check rows_testable "summary consistent"
    [ [| vs "north"; vf 20.0 |] ]
    rows;
  (* invariant: summary always equals the recomputed aggregate *)
  Alcotest.(check int) "no stale groups" 0
    (int_cell s
       "select count(*) from region_total where region not in (select region \
        from sale)")

let test_transitive_closure () =
  let s = System.create () in
  run_script s (load "transitive_closure.sql");
  (* chain 1..6 gives 15 pairs; node 0 reaches all of 1..6: 6 more *)
  Alcotest.(check int) "closure size" 21 (int_cell s "select count(*) from path");
  Alcotest.(check int) "0 reaches everyone" 6
    (int_cell s "select count(*) from path where src = 0");
  Alcotest.(check int) "no duplicates" 21
    (int_cell s "select count(*) from (select distinct src, dst from path) d");
  (* the closure is sound: every path endpoint pair is connected *)
  Alcotest.(check int) "edge implies path" 0
    (int_cell s
       "select count(*) from edge e where not exists (select * from path p \
        where p.src = e.src and p.dst = e.dst)")

let suite =
  [
    Alcotest.test_case "bank.sql" `Quick test_bank;
    Alcotest.test_case "transitive_closure.sql" `Quick test_transitive_closure;
    Alcotest.test_case "paper_scenario.sql" `Quick test_paper_scenario;
    Alcotest.test_case "derived_data.sql" `Quick test_derived_data;
  ]

(* Tests for schemas, coercion, tables and database states. *)

open Core
open Helpers

let emp_schema () =
  Schema.table "emp"
    [
      Schema.column "name" Schema.T_string;
      Schema.column ~not_null:true "emp_no" Schema.T_int;
      Schema.column "salary" Schema.T_float;
      Schema.column "dept_no" Schema.T_int;
    ]

let test_schema_construction () =
  let s = emp_schema () in
  Alcotest.(check int) "arity" 4 (Schema.arity s);
  Alcotest.(check (list string)) "names"
    [ "name"; "emp_no"; "salary"; "dept_no" ]
    (Schema.column_names s);
  Alcotest.(check int) "index" 2 (Schema.column_index s "salary");
  Alcotest.(check bool) "has" true (Schema.has_column s "dept_no");
  Alcotest.(check bool) "has not" false (Schema.has_column s "nope");
  expect_error (fun () -> Schema.column_index s "nope");
  expect_error (fun () ->
      Schema.table "t" [ Schema.column "a" Schema.T_int; Schema.column "a" Schema.T_int ]);
  expect_error (fun () -> Schema.table "t" [])

let test_coercion () =
  let s = emp_schema () in
  let row = Schema.coerce_row s [| vs "Jane"; vi 1; vi 50; vi 2 |] in
  (* int literal coerced into float column *)
  Alcotest.check value_testable "coerced" (vf 50.0) row.(2);
  (* arity mismatch *)
  expect_error (fun () -> Schema.coerce_row s [| vs "Jane"; vi 1 |]);
  (* type mismatch *)
  expect_error (fun () ->
      Schema.coerce_row s [| vs "Jane"; vs "one"; vf 1.0; vi 2 |]);
  (* not-null violation *)
  expect_error (fun () -> Schema.coerce_row s [| vs "Jane"; vnull; vf 1.0; vi 2 |]);
  (* null allowed elsewhere *)
  let row = Schema.coerce_row s [| vnull; vi 1; vnull; vnull |] in
  Alcotest.check value_testable "null ok" vnull row.(0)

let test_table_storage () =
  let tbl = Table.create (emp_schema ()) in
  Alcotest.(check bool) "empty" true (Table.is_empty tbl);
  let h1 = Handle.fresh "emp" and h2 = Handle.fresh "emp" in
  let r1 = [| vs "a"; vi 1; vf 1.0; vi 1 |] in
  let r2 = [| vs "b"; vi 2; vf 2.0; vi 1 |] in
  let tbl = Table.insert tbl h1 r1 in
  let tbl = Table.insert tbl h2 r2 in
  Alcotest.(check int) "card" 2 (Table.cardinality tbl);
  Alcotest.check row_testable "find" r1 (Table.get tbl h1);
  (* persistence: deleting from a successor does not affect snapshot *)
  let tbl' = Table.delete tbl h1 in
  Alcotest.(check int) "card after delete" 1 (Table.cardinality tbl');
  Alcotest.(check int) "snapshot intact" 2 (Table.cardinality tbl);
  Alcotest.(check bool) "mem" false (Table.mem tbl' h1);
  (* update *)
  let r1' = [| vs "a2"; vi 1; vf 9.0; vi 1 |] in
  let tbl'' = Table.update tbl h1 r1' in
  Alcotest.check row_testable "updated" r1' (Table.get tbl'' h1);
  Alcotest.check row_testable "snapshot value intact" r1 (Table.get tbl h1);
  (* enumeration order is insertion order *)
  Alcotest.check rows_testable "rows ordered" [ r1; r2 ] (Table.rows tbl)

let test_duplicate_rows () =
  (* the model is a multiset: equal rows under distinct handles *)
  let tbl = Table.create (emp_schema ()) in
  let row = [| vs "dup"; vi 1; vf 1.0; vi 1 |] in
  let tbl = Table.insert tbl (Handle.fresh "emp") row in
  let tbl = Table.insert tbl (Handle.fresh "emp") row in
  Alcotest.(check int) "two copies" 2 (Table.cardinality tbl)

let test_database () =
  let db = Database.empty in
  let db = Database.create_table db (emp_schema ()) in
  expect_error (fun () -> Database.create_table db (emp_schema ()));
  let db, h = Database.insert db "emp" [| vs "a"; vi 1; vi 10; vi 1 |] in
  Alcotest.(check string) "handle table" "emp" (Handle.table h);
  Alcotest.check value_testable "coerced on insert" (vf 10.0)
    (Database.get_row db h).(2);
  Alcotest.(check int) "total rows" 1 (Database.total_rows db);
  let db2 = Database.delete db h in
  Alcotest.(check (option row_testable)) "gone" None (Database.find_row db2 h);
  Alcotest.(check bool) "old state intact" true
    (Database.find_row db h <> None);
  expect_error (fun () -> Database.table db "nope");
  expect_error (fun () -> Database.drop_table db "nope");
  let db3 = Database.drop_table db "emp" in
  Alcotest.(check (list string)) "no tables" [] (Database.table_names db3)

let test_handles_not_reused () =
  let h1 = Handle.fresh "t" and h2 = Handle.fresh "t" in
  Alcotest.(check bool) "distinct" false (Handle.equal h1 h2);
  Alcotest.(check bool) "ordered" true (Handle.compare h1 h2 < 0)

let suite =
  [
    Alcotest.test_case "schema construction" `Quick test_schema_construction;
    Alcotest.test_case "coercion" `Quick test_coercion;
    Alcotest.test_case "table storage is persistent" `Quick test_table_storage;
    Alcotest.test_case "duplicate rows allowed" `Quick test_duplicate_rows;
    Alcotest.test_case "database states" `Quick test_database;
    Alcotest.test_case "handles are not reused" `Quick test_handles_not_reused;
  ]

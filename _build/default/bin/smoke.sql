-- CLI smoke script: exercised by `dune runtest` via a golden diff.
create table emp (name string, emp_no int primary key, salary float);
create rule floor_salary
when updated emp.salary
if exists (select * from new updated emp.salary where salary < 0)
then rollback;;
insert into emp values ('ada', 1, 100), ('bob', 2, 200);
update emp set salary = salary - 500;
update emp set salary = salary + 50;
select name, salary from emp order by emp_no;

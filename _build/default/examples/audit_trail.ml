(* Auditing and authorization-style monitoring using the Section 5
   extensions.

   Run with:  dune exec examples/audit_trail.exe

   - Section 5.1: rules triggered by data retrieval (the engine is
     configured with select tracking); every read of the salary table
     inside a transaction is recorded.
   - Section 5.2: an external-procedure action pages an operator (here:
     prints to stdout) and returns the operation block to apply.
   - Section 5.3: explicit rule triggering points inside a long
     transaction. *)

open Core

let show s sql =
  Printf.printf "> %s\n" sql;
  List.iter (fun r -> print_endline (System.render_result r)) (System.exec s sql)

let () =
  let config = { Engine.default_config with track_selects = true } in
  let s = System.create ~config () in

  ignore
    (System.exec s
       "create table payroll (emp_no int, salary float);\n\
        create table read_audit (emp_no int);\n\
        create table change_audit (emp_no int, old_salary float, new_salary \
        float)");

  (* Retrieval-triggered rule: record which payroll tuples were read. *)
  ignore
    (System.exec s
       "create rule audit_reads when selected payroll then insert into \
        read_audit (select emp_no from selected payroll)");

  (* Change auditing joins the old and new transition tables. *)
  ignore
    (System.exec s
       "create rule audit_changes when updated payroll.salary then insert \
        into change_audit (select o.emp_no, o.salary, n.salary from old \
        updated payroll.salary o, new updated payroll.salary n where o.emp_no \
        = n.emp_no)");

  (* External procedure: called for large raises; computes a
     compensating operation block in OCaml. *)
  System.register_procedure s "page_operator" (fun ctx ->
      let big =
        ctx.Procedures.query
          (Parser.parse_select_string
             "select n.emp_no from new updated payroll.salary n, old updated \
              payroll.salary o where n.emp_no = o.emp_no and n.salary > 2 * \
              o.salary")
      in
      List.iter
        (fun row ->
          Printf.printf "  [pager] suspicious raise for employee %s\n"
            (Value.to_display row.(0)))
        big.Eval.rows;
      (* cap the raise at exactly 2x by returning a repair block *)
      List.filter_map
        (fun row ->
          match row.(0) with
          | Value.Int emp_no ->
            Some
              (match
                 Parser.parse_statement_string
                   (Printf.sprintf
                      "update payroll set salary = (select 2.0 * o.salary \
                       from old updated payroll.salary o where o.emp_no = %d) \
                       where emp_no = %d"
                      emp_no emp_no)
               with
              | Ast.Stmt_op op -> op
              | _ -> assert false)
          | _ -> None)
        big.Eval.rows);
  ignore
    (System.exec s
       "create rule cap_raises when updated payroll.salary if exists (select \
        * from new updated payroll.salary n, old updated payroll.salary o \
        where n.emp_no = o.emp_no and n.salary > 2 * o.salary) then call \
        page_operator");
  ignore (System.exec s "create rule priority cap_raises before audit_changes");

  show s "insert into payroll values (1, 1000), (2, 2000), (3, 3000)";

  print_endline "\n-- Reads inside a transaction are audited at commit:";
  show s "begin";
  show s "select salary from payroll where emp_no = 2";
  show s "commit";
  show s "select * from read_audit";

  print_endline "\n-- A 3x raise is capped by the external procedure, then audited:";
  show s "update payroll set salary = salary * 3 where emp_no = 1";
  show s "select * from payroll order by emp_no";
  show s "select * from change_audit order by emp_no";

  print_endline "\n-- Triggering points (Section 5.3) split one transaction:";
  show s "begin";
  show s "update payroll set salary = salary + 1 where emp_no = 2";
  show s "process rules";
  show s "update payroll set salary = salary + 1 where emp_no = 3";
  show s "commit";
  show s "select * from change_audit order by emp_no"

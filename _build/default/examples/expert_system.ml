(* A knowledge-base / expert-system workload (the paper's Section 1
   motivation: "production rules in database systems provide a flexible
   framework for building efficient knowledge-base and expert
   systems").

   Run with:  dune exec examples/expert_system.exe

   Derived relation maintained by rules: the ancestor relation as the
   transitive closure of a parent relation.  The set-oriented
   transition tables act exactly as the deltas of semi-naive datalog
   evaluation: the recursive rule joins only the NEWLY derived tuples
   ("inserted ancestor") against the base relation, so each rule firing
   performs one semi-naive iteration, and quiescence is the fixpoint. *)

open Core

let show s sql =
  Printf.printf "> %s\n" sql;
  List.iter (fun r -> print_endline (System.render_result r)) (System.exec s sql)

let quiet s sql = ignore (System.exec s sql)

let () =
  let s = System.create () in
  quiet s
    "create table parent (par string, child string);\n\
     create table ancestor (anc string, des string)";

  (* Base case: every new parent edge is an ancestor pair. *)
  quiet s
    "create rule tc_base when inserted into parent then insert into ancestor \
     (select p.par, p.child from inserted parent p where not exists (select * \
     from ancestor a where a.anc = p.par and a.des = p.child))";

  (* Semi-naive step, extending new pairs to the right... *)
  quiet s
    "create rule tc_right when inserted into ancestor then insert into \
     ancestor (select d.anc, p.child from inserted ancestor d, parent p where \
     p.par = d.des and not exists (select * from ancestor a where a.anc = \
     d.anc and a.des = p.child))";

  (* ...and to the left, so incremental edge additions also close. *)
  quiet s
    "create rule tc_left when inserted into ancestor then insert into \
     ancestor (select a.anc, d.des from ancestor a, inserted ancestor d where \
     a.des = d.anc and not exists (select * from ancestor a2 where a2.anc = \
     a.anc and a2.des = d.des))";

  print_endline "-- Load a family tree in ONE transaction; the closure is";
  print_endline "-- derived to fixpoint before commit.";
  show s
    "insert into parent values ('alice', 'bob'), ('alice', 'carol'), ('bob', \
     'dave'), ('carol', 'erin'), ('dave', 'fred')";
  show s "select count(*) as ancestor_pairs from ancestor";
  show s "select des from ancestor where anc = 'alice' order by des";

  print_endline "\n-- Incremental update: grafting a new root on top.";
  show s "insert into parent values ('zoe', 'alice')";
  show s "select count(*) as pairs_for_zoe from ancestor where anc = 'zoe'";
  show s "select des from ancestor where anc = 'zoe' order by des";

  print_endline "\n-- And a mid-tree edge: both delta directions are needed.";
  show s "insert into parent values ('erin', 'gus')";
  show s "select anc from ancestor where des = 'gus' order by anc";

  let stats = Engine.stats (System.engine s) in
  Printf.printf
    "\nsemi-naive iterations (rule firings): %d over %d transactions\n"
    stats.Engine.rule_firings stats.Engine.transactions;

  print_endline "\n-- The static analyzer flags the (intentional) recursion:";
  let report = System.analyze s in
  List.iter
    (fun cycle ->
      Printf.printf "  potential loop: %s\n" (String.concat " -> " cycle))
    report.Analysis.potential_loops

(* Quickstart: the smallest useful tour of the system.

   Run with:  dune exec examples/quickstart.exe

   It creates the paper's emp/dept schema, defines the paper's Example
   3.1 rule (cascaded delete), and shows set-oriented rule processing
   at transaction commit. *)

open Core

let section title = Printf.printf "\n=== %s ===\n" title

let show s sql =
  Printf.printf "> %s\n" sql;
  List.iter
    (fun r -> print_endline (System.render_result r))
    (System.exec s sql)

let () =
  let s = System.create () in

  section "Schema";
  show s "create table emp (name string, emp_no int, salary float, dept_no int)";
  show s "create table dept (dept_no int, mgr_no int)";

  section "Data";
  show s "insert into dept values (1, 100), (2, 200)";
  show s
    "insert into emp values ('Jane', 100, 90000, 1), ('Mary', 200, 60000, 2), \
     ('Jim', 300, 55000, 2)";

  section "A set-oriented production rule (paper Example 3.1)";
  show s
    "create rule cascade_emp when deleted from dept then delete from emp \
     where dept_no in (select dept_no from deleted dept)";

  section "Rules fire on the SET of changes at commit";
  show s "delete from dept where dept_no = 2";
  show s "select name, dept_no from emp";

  section "Conditions can aggregate over transition tables";
  show s
    "create rule salary_guard when updated emp.salary if (select sum(salary) \
     from new updated emp.salary) > (select sum(salary) from old updated \
     emp.salary) then rollback";
  show s "update emp set salary = salary * 1.5";
  show s "select name, salary from emp -- unchanged: the raise was rolled back";
  show s "update emp set salary = salary * 0.9";
  show s "select name, salary from emp -- cuts are allowed";

  section "Engine statistics";
  let stats = Engine.stats (System.engine s) in
  Printf.printf
    "transactions=%d transitions=%d rule_firings=%d conditions=%d rollbacks=%d\n"
    stats.Engine.transactions stats.Engine.transitions stats.Engine.rule_firings
    stats.Engine.conditions_evaluated stats.Engine.rollbacks

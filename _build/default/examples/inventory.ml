(* An active-database inventory application.

   Run with:  dune exec examples/inventory.exe

   Demonstrates the paper's motivating uses beyond integrity:
   - condition monitoring with automatic reaction (reorder rules),
   - maintenance of derived data (a per-category stock summary kept
     consistent by rules),
   - set-oriented processing: a bulk shipment is one transition, the
     summary is recomputed once, and reorders are generated for all
     depleted items in a single rule firing. *)

open Core

let show s sql =
  Printf.printf "> %s\n" sql;
  List.iter (fun r -> print_endline (System.render_result r)) (System.exec s sql)

let quiet s sql = ignore (System.exec s sql)

let () =
  let s = System.create () in
  quiet s
    "create table item (sku int primary key, category string, qty int, \
     reorder_point int, on_order bool)";
  quiet s "create table purchase_order (sku int, amount int)";
  quiet s "create table category_summary (category string, total_qty int)";

  (* Derived-data maintenance: rebuild the summary of any category
     whose items changed.  One set-oriented firing per transition. *)
  quiet s
    "create rule maintain_summary when inserted into item or deleted from \
     item or updated item.qty then delete from category_summary; insert into \
     category_summary (select category, sum(qty) from item group by category)";

  (* Condition monitoring: when quantities drop, order every depleted
     item that is not already on order — one rule firing covers the
     whole set. *)
  quiet s
    "create rule reorder when updated item.qty if exists (select * from item \
     where qty < reorder_point and on_order = false) then insert into \
     purchase_order (select sku, reorder_point * 2 - qty from item where qty \
     < reorder_point and on_order = false); update item set on_order = true \
     where qty < reorder_point and on_order = false";

  (* Receiving stock clears the on-order flag. *)
  quiet s
    "create rule receive when updated item.qty then update item set on_order \
     = false where on_order = true and qty >= reorder_point and sku in \
     (select sku from new updated item.qty)";

  quiet s "create rule priority maintain_summary before reorder";

  print_endline "-- Initial stock";
  show s
    "insert into item values (1, 'widgets', 50, 20, false), (2, 'widgets', \
     15, 10, false), (3, 'gadgets', 40, 25, false), (4, 'gadgets', 30, 25, \
     false)";
  show s "select * from category_summary order by category";

  print_endline "\n-- A bulk sale depletes several items in ONE operation block";
  show s "update item set qty = qty - 25 where sku in (1, 3, 4)";
  show s "select sku, qty, on_order from item order by sku";
  show s "select * from purchase_order order by sku";
  show s "select * from category_summary order by category";

  print_endline "\n-- Receiving a shipment clears the on-order flags";
  show s "update item set qty = qty + 40 where sku in (3, 4)";
  show s "select sku, qty, on_order from item order by sku";
  show s "select * from category_summary order by category";

  let stats = Engine.stats (System.engine s) in
  Printf.printf "\nrule firings: %d over %d transactions\n"
    stats.Engine.rule_firings stats.Engine.transactions

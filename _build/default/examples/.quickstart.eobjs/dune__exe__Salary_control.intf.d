examples/salary_control.mli:

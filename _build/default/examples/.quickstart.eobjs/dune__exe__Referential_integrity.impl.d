examples/referential_integrity.ml: Analysis Core Errors Format List Printf System

examples/quickstart.mli:

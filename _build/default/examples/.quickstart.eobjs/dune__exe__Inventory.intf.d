examples/inventory.mli:

examples/audit_trail.ml: Array Ast Core Engine Eval List Parser Printf Procedures System Value

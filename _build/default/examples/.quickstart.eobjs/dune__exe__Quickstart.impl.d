examples/quickstart.ml: Core Engine List Printf System

examples/inventory.ml: Core Engine List Printf System

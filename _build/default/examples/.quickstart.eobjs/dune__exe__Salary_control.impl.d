examples/salary_control.ml: Core Engine List Printf System

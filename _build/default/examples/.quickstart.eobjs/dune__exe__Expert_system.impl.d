examples/expert_system.ml: Analysis Core Engine List Printf String System

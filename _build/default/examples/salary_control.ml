(* The paper's running scenario end-to-end: Examples 3.1–4.3.

   Run with:  dune exec examples/salary_control.exe

   Reproduces Section 4.5's Example 4.3 walk-through exactly: the
   management hierarchy, the combined deletion + salary update, rule R2
   prioritized before rule R1, and the cascade the paper narrates. *)

open Core

let show s sql =
  Printf.printf "> %s\n" sql;
  List.iter (fun r -> print_endline (System.render_result r)) (System.exec s sql)

let dump s =
  show s "select name, emp_no, salary, dept_no from emp order by emp_no";
  show s "select * from dept order by dept_no"

let () =
  let s = System.create () in
  show s "create table emp (name string, emp_no int, salary float, dept_no int)";
  show s "create table dept (dept_no int, mgr_no int)";

  print_endline "\n-- Rule R1 (Example 4.1): recursive cascaded delete over managers.";
  show s
    "create rule r1 when deleted from emp then delete from emp where dept_no \
     in (select dept_no from dept where mgr_no in (select emp_no from deleted \
     emp)); delete from dept where mgr_no in (select emp_no from deleted emp)";

  print_endline "\n-- Rule R2 (Example 4.2): salary update control.";
  show s
    "create rule r2 when updated emp.salary if (select avg(salary) from new \
     updated emp.salary) > 50000 then delete from emp where emp_no in (select \
     emp_no from new updated emp.salary) and salary > 80000";

  print_endline "\n-- Example 4.3: R2 has priority over R1.";
  show s "create rule priority r2 before r1";

  print_endline
    "\n-- The org: Jane manages Mary and Jim; Mary manages Bill; Jim manages\n\
     -- Sam and Sue (departments 1, 2, 3 are managed by Jane, Mary, Jim).";
  show s "insert into dept values (1, 100), (2, 200), (3, 300)";
  show s
    "insert into emp values ('Jane', 100, 60000, 0), ('Mary', 200, 70000, 1), \
     ('Jim', 300, 40000, 1), ('Bill', 400, 25000, 2), ('Sam', 500, 30000, 3), \
     ('Sue', 600, 30000, 3)";
  dump s;

  print_endline
    "\n-- One operation block deletes Jane and updates salaries such that\n\
     -- the updated average exceeds 50K and Mary's salary exceeds 80K.\n\
     -- Paper's narration: R2 fires deleting Mary; R1 then sees the\n\
     -- composite deleted set {Jane, Mary} and cascades; R1 re-fires on\n\
     -- its own deletions until the tree is gone.";
  show s "begin";
  show s "delete from emp where emp_no = 100";
  show s "update emp set salary = 85000 where emp_no = 200";
  show s "update emp set salary = 40000 where emp_no = 400";
  show s "commit";
  dump s;

  let stats = Engine.stats (System.engine s) in
  Printf.printf "\nrule firings: %d, transitions: %d, rollbacks: %d\n"
    stats.Engine.rule_firings stats.Engine.transitions stats.Engine.rollbacks

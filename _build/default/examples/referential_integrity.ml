(* Referential integrity via the constraint compiler.

   Run with:  dune exec examples/referential_integrity.exe

   The paper motivates production rules as the mechanism for integrity
   enforcement ([Esw76], Section 1) and points to a higher-level
   constraint facility compiled into rules (Section 6, [CW90]).  This
   example declares constraints in DDL, shows the generated rules, and
   exercises every repair policy. *)

open Core

let show s sql =
  Printf.printf "> %s\n" sql;
  match System.exec s sql with
  | results ->
    List.iter (fun r -> print_endline (System.render_result r)) results
  | exception Errors.Error e -> Printf.printf "!! %s\n" (Errors.to_string e)

let () =
  let s = System.create () in

  print_endline "-- Departments with a primary key; employees reference them.";
  show s "create table dept (dept_no int primary key, name string)";
  show s
    "create table emp (emp_no int primary key, name string, dept_no int, \
     foreign key (dept_no) references dept (dept_no) on delete cascade)";
  show s
    "create table badge (badge_no int primary key, emp_no int, foreign key \
     (emp_no) references emp (emp_no) on delete set null)";

  print_endline "\n-- The constraints were compiled into production rules:";
  show s "show rules";

  print_endline "\n-- Valid data.";
  show s "insert into dept values (1, 'engineering'), (2, 'sales')";
  show s
    "insert into emp values (100, 'Jane', 1), (200, 'Mary', 2), (300, 'Jim', 2)";
  show s "insert into badge values (9001, 100), (9002, 200)";

  print_endline "\n-- Key violations are rolled back by the generated rules.";
  show s "insert into dept values (1, 'duplicate-key')";
  show s "insert into emp values (400, 'Orphan', 99)";

  print_endline
    "\n-- Deleting a department cascades to employees; their badges are\n\
     -- set to NULL by the second foreign key's repair rule.  All of this\n\
     -- is ordinary rule processing in one transaction.";
  show s "delete from dept where dept_no = 2";
  show s "select * from emp";
  show s "select * from badge";

  print_endline "\n-- A rule-set analysis (Section 6): loops and conflicts.";
  let report = System.analyze s in
  Format.printf "%a@." Analysis.pp_report report

(** Hand-written lexer for the SQL dialect.

    Supports identifiers, integer and float literals, single-quoted
    strings with [''] escaping, line ([--]) and block comments, and the
    dialect's operator symbols.  Lexical errors are raised as
    [Parse_error] with line/column positions. *)

val tokenize : string -> Token.located list
(** Tokenize a whole input; the result always ends with an {!Token.Eof}
    token. *)

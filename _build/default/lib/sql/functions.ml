(* Scalar SQL functions.  Names are matched lower-case.  Except where
   noted (coalesce, nullif, ifnull), a NULL argument yields NULL. *)

open Relational

let wrong_arity name = Errors.type_error "wrong number of arguments to %s" name

let numeric1 name f_int f_float = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Int n ] -> f_int n
  | [ Value.Float f ] -> f_float f
  | [ v ] ->
    Errors.type_error "%s expects a numeric argument, got %s" name
      (Value.type_name v)
  | _ -> wrong_arity name

let string1 name f = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Str s ] -> f s
  | [ v ] ->
    Errors.type_error "%s expects a string argument, got %s" name
      (Value.type_name v)
  | _ -> wrong_arity name

let apply name (args : Value.t list) : Value.t =
  match name with
  | "abs" ->
    numeric1 "abs"
      (fun n -> Value.Int (abs n))
      (fun f -> Value.Float (Float.abs f))
      args
  | "sign" ->
    numeric1 "sign"
      (fun n -> Value.Int (compare n 0))
      (fun f -> Value.Int (compare f 0.0))
      args
  | "floor" ->
    numeric1 "floor"
      (fun n -> Value.Int n)
      (fun f -> Value.Int (int_of_float (Float.floor f)))
      args
  | "ceil" | "ceiling" ->
    numeric1 name
      (fun n -> Value.Int n)
      (fun f -> Value.Int (int_of_float (Float.ceil f)))
      args
  | "round" -> (
    match args with
    | [ v ] -> numeric1 "round" (fun n -> Value.Int n)
                 (fun f -> Value.Int (int_of_float (Float.round f))) [ v ]
    | [ Value.Null; _ ] | [ _; Value.Null ] -> Value.Null
    | [ v; Value.Int digits ] -> (
      match Value.to_float v with
      | Some f ->
        let scale = 10.0 ** float_of_int digits in
        Value.Float (Float.round (f *. scale) /. scale)
      | None -> Errors.type_error "round expects a numeric argument")
    | _ -> wrong_arity "round")
  | "upper" -> string1 "upper" (fun s -> Value.Str (String.uppercase_ascii s)) args
  | "lower" -> string1 "lower" (fun s -> Value.Str (String.lowercase_ascii s)) args
  | "length" -> string1 "length" (fun s -> Value.Int (String.length s)) args
  | "trim" -> string1 "trim" (fun s -> Value.Str (String.trim s)) args
  | "substr" | "substring" -> (
    (* 1-based start; negative or overlong ranges are clamped *)
    match args with
    | [ Value.Null; _ ] | [ Value.Null; _; _ ]
    | [ _; Value.Null ] | [ _; Value.Null; _ ] | [ _; _; Value.Null ] ->
      Value.Null
    | [ Value.Str s; Value.Int start ] ->
      let n = String.length s in
      let from = max 0 (start - 1) in
      Value.Str (if from >= n then "" else String.sub s from (n - from))
    | [ Value.Str s; Value.Int start; Value.Int len ] ->
      let n = String.length s in
      let from = max 0 (start - 1) in
      let len = max 0 (min len (n - from)) in
      Value.Str (if from >= n then "" else String.sub s from len)
    | _ -> wrong_arity name)
  | "coalesce" -> (
    match List.find_opt (fun v -> not (Value.is_null v)) args with
    | Some v -> v
    | None -> Value.Null)
  | "ifnull" -> (
    match args with
    | [ a; b ] -> if Value.is_null a then b else a
    | _ -> wrong_arity "ifnull")
  | "nullif" -> (
    match args with
    | [ a; b ] ->
      if Value.truth_holds (Value.eq_sql a b) then Value.Null else a
    | _ -> wrong_arity "nullif")
  | other -> Errors.semantic "unknown function %S" other

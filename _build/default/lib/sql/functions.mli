(** Scalar SQL functions: abs, sign, floor, ceil/ceiling, round,
    upper, lower, length, trim, substr/substring, coalesce, ifnull,
    nullif.  Names are matched lower-case.  Except for
    coalesce/ifnull/nullif, a NULL argument yields NULL; unknown names
    and arity mismatches raise. *)

val apply : string -> Relational.Value.t list -> Relational.Value.t

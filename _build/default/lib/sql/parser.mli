(** Recursive-descent parser for the dialect (paper Sections 2.1, 3,
    4.4 and 5, plus the DDL around them).

    One syntactic note: the paper separates the operations of a rule
    action with [';'], which is also the statement separator.  Action
    blocks are parsed greedily — after a [';'] the block continues if
    and only if the next tokens begin another DML operation.  A script
    can terminate a rule definition explicitly with an empty statement
    ([';;']) or by following it with a non-DML statement. *)

val parse_script : string -> Ast.statement list
(** Parse a [';']-separated script; empty statements are skipped. *)

val parse_statement_string : string -> Ast.statement
(** Parse exactly one statement. *)

val parse_expr_string : string -> Ast.expr
(** Parse a standalone expression (for tests and programmatic rule
    construction). *)

val parse_select_string : string -> Ast.select
(** Parse a standalone select operation. *)

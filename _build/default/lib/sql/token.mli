(** Lexical tokens for the SQL dialect.  Keywords are case-insensitive;
    identifiers preserve case and compare case-sensitively. *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Kw of string  (** upper-cased keyword *)
  | Symbol of string  (** punctuation and operators *)
  | Eof

type located = { token : t; line : int; col : int }

val keywords : string list
(** Every word with special meaning anywhere in the grammar. *)

val is_keyword : string -> bool
(** Case-insensitive membership in {!keywords}. *)

val to_string : t -> string
(** Human-readable rendering for error messages. *)

lib/sql/parser.ml: Array Ast Errors Lexer List Option Printf Relational Schema String Token Value

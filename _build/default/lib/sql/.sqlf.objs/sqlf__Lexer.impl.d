lib/sql/lexer.ml: Buffer Errors List Option Printf Relational String Token

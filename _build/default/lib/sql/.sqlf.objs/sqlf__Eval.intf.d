lib/sql/eval.mli: Ast Database Relational Row Table Value

lib/sql/dml.mli: Ast Database Eval Handle Relational Row

lib/sql/functions.mli: Relational

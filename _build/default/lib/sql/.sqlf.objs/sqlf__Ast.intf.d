lib/sql/ast.mli: Relational Schema Value

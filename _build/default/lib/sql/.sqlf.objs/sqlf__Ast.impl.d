lib/sql/ast.ml: List Option Relational Schema String Value

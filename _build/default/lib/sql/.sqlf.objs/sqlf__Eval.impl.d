lib/sql/eval.ml: Array Ast Database Errors Functions List Map Option Pretty Printf Relational Row Schema Set String Table Value

lib/sql/pretty.ml: Ast Buffer List Printf Relational String Value

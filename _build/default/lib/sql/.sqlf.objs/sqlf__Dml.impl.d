lib/sql/dml.ml: Array Ast Database Errors Eval Handle List Option Relational Row Schema String Table Value

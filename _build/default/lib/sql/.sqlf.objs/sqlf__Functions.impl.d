lib/sql/functions.ml: Errors Float List Relational String Value

lib/sql/token.mli:

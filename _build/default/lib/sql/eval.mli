(** Query evaluation.

    The evaluator works over {!relation}s — named column lists plus
    rows — rather than stored tables, so the same machinery evaluates
    base tables, derived tables and the paper's transition tables.  A
    {!resolver} maps AST table sources to relations; the rules engine
    supplies a resolver that also serves the triggering rule's
    transition tables.

    Three-valued logic: predicates evaluate to [Bool _] or [Null]
    (unknown); a row is selected only when the predicate is definitely
    true. *)

open Relational

type relation = { rel_name : string; cols : string array; rows : Row.t list }

type resolver = Ast.table_source -> relation

val relation_of_table : Table.t -> relation

val base_resolver : Database.t -> resolver
(** A resolver over base tables only; referencing a transition table
    raises [Invalid_transition_reference]. *)

(** {2 Environments} *)

type binding = {
  bind_name : string;
  bind_cols : string array;
  bind_row : Row.t;
}

type env = binding list list
(** Scopes, innermost first; each frame is the from-list of one
    select.  Column references resolve innermost-first; within a scope
    an unqualified reference must be unambiguous. *)

val empty_env : env

(** {2 Uncorrelated-subquery caching}

    Predicates are evaluated once per candidate row; without care an
    embedded select that does not reference the outer row would be
    re-evaluated for every row.  A {!cache} shared across the rows of
    one operation memoizes such subqueries; correlation is detected
    dynamically on the first evaluation.  A cache is only sound while
    the database state is fixed — create one per operation or rule
    condition. *)

type cache

val make_cache : unit -> cache

val join_optimization : bool ref
(** When true (the default), an equality conjunct in the WHERE clause
    linking two from-list sources turns the nested-loop join into an
    order-preserving hash join.  Results are identical; the switch
    exists for the ablation benchmark. *)

(** {2 Evaluation} *)

val eval_select : ?cache:cache -> ?outer:env -> resolver -> Ast.select -> relation
(** Evaluate a select operation: cross product of the from-list, WHERE
    filter, grouping and aggregates, HAVING, projection, DISTINCT,
    ORDER BY, LIMIT.  [outer] supplies enclosing scopes for correlated
    evaluation. *)

val eval_expr_in : ?cache:cache -> ?outer:env -> resolver -> env -> Ast.expr -> Value.t
(** Evaluate an expression in the given environment (aggregates are
    rejected outside grouped queries). *)

val eval_predicate : ?cache:cache -> ?outer:env -> resolver -> env -> Ast.expr -> bool
(** Evaluate a predicate and collapse three-valued logic: [true] only
    when the predicate is definitely true. *)

(** Materialization of the paper's logical transition tables
    (Section 3) from a rule's composite transition information:

    - [inserted t]: current values of inserted tuples of [t];
    - [deleted t]: previous-state values of deleted tuples of [t];
    - [old updated t[.c]] / [new updated t[.c]]: previous-state and
      current values of updated tuples (restricted to those where
      column [c] was updated, for the [.c] forms);
    - [selected t[.c]]: current values of retrieved tuples (Section 5.1
      extension).

    "Previous state" means the state at the start of the rule's
    composite transition; Figure 1 records those values incrementally,
    so materialization needs only the trans-info and the current
    database state.  Row order is deterministic (handle order). *)

open Relational
module Ast = Sqlf.Ast
module Eval = Sqlf.Eval

val materialize :
  Trans_info.t -> current_db:Database.t -> Ast.trans_table -> Eval.relation

val resolver : Trans_info.t -> Database.t -> Eval.resolver
(** A resolver serving base tables from the database and transition
    tables from the trans-info: the evaluation environment for a rule's
    condition and action (Section 4.1). *)

lib/rules/analysis.mli: Format Priority Rule Sqlf

lib/rules/engine.ml: Database Effect Errors Fmt Lazy List Logs Map Option Priority Procedures Relational Rule Schema Selection Set Sqlf String Trans_info Transition_tables

lib/rules/priority.mli:

lib/rules/rule.ml: Errors Fmt List Relational Sqlf String

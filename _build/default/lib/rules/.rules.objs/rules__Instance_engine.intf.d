lib/rules/instance_engine.mli: Database Relational Rule Schema Sqlf

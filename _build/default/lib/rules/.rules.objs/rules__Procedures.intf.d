lib/rules/procedures.mli: Sqlf

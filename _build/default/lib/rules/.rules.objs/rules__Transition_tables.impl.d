lib/rules/transition_tables.ml: Array Database Effect Handle List Relational Schema Sqlf String Trans_info

lib/rules/procedures.ml: Hashtbl Relational Sqlf

lib/rules/rule.mli: Format Sqlf

lib/rules/analysis.ml: Fmt Hashtbl List Option Priority Rule Set Sqlf String

lib/rules/engine.mli: Database Format Priority Procedures Relational Rule Schema Selection Sqlf

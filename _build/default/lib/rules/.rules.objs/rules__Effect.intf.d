lib/rules/effect.mli: Format Handle Relational Set Sqlf

lib/rules/trans_info.mli: Database Effect Format Handle Relational Row Sqlf

lib/rules/constraints.ml: List Option Printf Relational Sqlf String

lib/rules/priority.ml: Errors List Map Option Relational Set String

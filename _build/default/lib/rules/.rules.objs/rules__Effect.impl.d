lib/rules/effect.ml: Fmt Handle List Option Relational Set Sqlf String

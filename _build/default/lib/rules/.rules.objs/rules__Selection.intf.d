lib/rules/selection.mli: Priority Rule

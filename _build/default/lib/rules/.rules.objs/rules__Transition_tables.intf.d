lib/rules/transition_tables.mli: Database Relational Sqlf Trans_info

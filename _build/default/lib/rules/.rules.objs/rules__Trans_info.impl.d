lib/rules/trans_info.ml: Database Effect Handle Relational Row

lib/rules/instance_engine.ml: Database Effect Errors Handle List Relational Row Rule Sqlf Trans_info Transition_tables

lib/rules/constraints.mli: Sqlf

lib/rules/selection.ml: List Priority Rule

(* External-procedure actions (paper Section 5.2).

   A rule action may be "call p" where [p] is a host-language (OCaml)
   procedure registered with the engine.  The procedure receives a
   read-only view of the current database state and of the triggering
   rule's transition tables, and returns the operation block whose
   execution is the action's effect on the database — exactly the
   paper's framing: "the effect on the database of executing an
   external procedure still corresponds to a sequence of data
   manipulation operations."  Side effects outside the database
   (logging, notification) are the procedure's own business and do not
   participate in rule semantics. *)

module Ast = Sqlf.Ast
module Eval = Sqlf.Eval

type context = {
  query : Ast.select -> Eval.relation;
      (** Evaluate a select against the current state; the select may
          reference the triggering rule's transition tables. *)
  rule_name : string;  (** The rule whose action is running. *)
}

type procedure = context -> Ast.op_block

type registry = (string, procedure) Hashtbl.t

let create () : registry = Hashtbl.create 8

let register registry name fn = Hashtbl.replace registry name fn

let find registry name =
  match Hashtbl.find_opt registry name with
  | Some fn -> fn
  | None -> Relational.Errors.raise_error (Relational.Errors.Unknown_procedure name)

(* Rule selection (paper Section 4.4).

   When several rules are triggered simultaneously, the engine picks a
   rule such that no other triggered rule is strictly higher in the
   user-declared partial order.  Among the remaining incomparable
   rules, a strategy breaks the tie:

   - [Creation_order]: the earliest-defined rule (deterministic default);
   - [Least_recently_considered]: prefer rules considered longest ago —
     round-robin-ish fairness;
   - [Most_recently_considered]: prefer rules considered most recently —
     depth-first-ish chaining.

   "Considered" means the rule was chosen and its condition evaluated,
   whether or not its action ran (the paper mentions both readings; we
   use consideration time). *)

type strategy =
  | Creation_order
  | Least_recently_considered
  | Most_recently_considered

type clock = { mutable now : int }

let make_clock () = { now = 0 }

let tick clock =
  clock.now <- clock.now + 1;
  clock.now

(* Pick from [candidates] (rules triggered and not yet considered in
   the current state).  [last_considered name] returns the clock time
   the rule was last considered, or 0 if never. *)
let choose strategy priorities ~last_considered candidates =
  match candidates with
  | [] -> None
  | _ ->
    let undominated =
      List.filter
        (fun (r : Rule.t) ->
          not
            (List.exists
               (fun (r' : Rule.t) ->
                 Priority.higher priorities r'.Rule.name r.Rule.name)
               candidates))
        candidates
    in
    (* The partial order is acyclic, so a non-empty candidate set has a
       maximal element. *)
    assert (undominated <> []);
    let better (a : Rule.t) (b : Rule.t) =
      match strategy with
      | Creation_order -> a.Rule.seq < b.Rule.seq
      | Least_recently_considered ->
        let ta = last_considered a.Rule.name
        and tb = last_considered b.Rule.name in
        ta < tb || (ta = tb && a.Rule.seq < b.Rule.seq)
      | Most_recently_considered ->
        let ta = last_considered a.Rule.name
        and tb = last_considered b.Rule.name in
        ta > tb || (ta = tb && a.Rule.seq < b.Rule.seq)
    in
    let best =
      List.fold_left
        (fun acc r -> match acc with
          | None -> Some r
          | Some cur -> if better r cur then Some r else acc)
        None undominated
    in
    best

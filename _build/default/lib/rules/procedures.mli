(** External-procedure actions (paper Section 5.2).

    A rule action may be [call p] where [p] is an OCaml procedure
    registered with the engine.  The procedure receives a read-only
    view of the current state and the triggering rule's transition
    tables, and returns the operation block whose execution is the
    action's effect on the database — the paper's framing: "the effect
    on the database of executing an external procedure still
    corresponds to a sequence of data manipulation operations". *)

module Ast = Sqlf.Ast
module Eval = Sqlf.Eval

type context = {
  query : Ast.select -> Eval.relation;
      (** Evaluate a select against the current state; it may reference
          the triggering rule's transition tables. *)
  rule_name : string;  (** The rule whose action is running. *)
}

type procedure = context -> Ast.op_block

type registry

val create : unit -> registry
val register : registry -> string -> procedure -> unit
val find : registry -> string -> procedure
(** Raises [Unknown_procedure] if absent. *)

(** Rule selection (paper Section 4.4).

    When several rules are triggered simultaneously, the engine picks a
    rule such that no other triggered rule is strictly higher in the
    declared partial order; a {!strategy} breaks ties among the
    remaining incomparable rules. *)

type strategy =
  | Creation_order  (** earliest-defined rule first (deterministic default) *)
  | Least_recently_considered
      (** prefer rules considered longest ago: round-robin fairness *)
  | Most_recently_considered
      (** prefer rules considered most recently: depth-first chaining *)

(** A logical clock of rule considerations. *)
type clock

val make_clock : unit -> clock
val tick : clock -> int

val choose :
  strategy ->
  Priority.t ->
  last_considered:(string -> int) ->
  Rule.t list ->
  Rule.t option
(** Pick from the candidates (rules triggered and not yet considered in
    the current state): first filter to rules not dominated by another
    candidate in the partial order, then break ties by strategy and
    creation sequence.  [None] iff the candidate list is empty. *)

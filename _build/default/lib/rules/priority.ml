(* User-declared rule ordering (paper Section 4.4).

   "create rule priority R1 before R2" declares that R1 has higher
   priority than R2.  Any acyclic set of such pairs induces a partial
   order; a rule is eligible for selection only if no other *triggered*
   rule is strictly higher.  Adding a pair that would create a cycle is
   rejected with the offending cycle. *)

open Relational
module Str_map = Map.Make (String)
module Str_set = Set.Make (String)

type t = { before : Str_set.t Str_map.t (* rule -> rules it precedes *) }

let empty = { before = Str_map.empty }

let successors t name =
  Option.value (Str_map.find_opt name t.before) ~default:Str_set.empty

(* Path from [src] to [dst] following the before-relation, if any;
   used both for cycle detection and for reporting the cycle. *)
let find_path t src dst =
  let rec dfs visited path node =
    if String.equal node dst then Some (List.rev (node :: path))
    else if Str_set.mem node visited then None
    else
      let visited = Str_set.add node visited in
      Str_set.fold
        (fun next acc ->
          match acc with
          | Some _ -> acc
          | None -> dfs visited (node :: path) next)
        (successors t node) None
  in
  dfs Str_set.empty [] src

let declare t ~high ~low =
  if String.equal high low then
    Errors.raise_error (Errors.Priority_cycle [ high; low ]);
  (match find_path t low high with
  | Some path -> Errors.raise_error (Errors.Priority_cycle (path @ [ low ]))
  | None -> ());
  let succ = Str_set.add low (successors t high) in
  { before = Str_map.add high succ t.before }

(* Is [a] strictly higher-priority than [b] (transitively)? *)
let higher t a b =
  if String.equal a b then false
  else Option.is_some (find_path t a b)

let pairs t =
  Str_map.fold
    (fun high lows acc ->
      Str_set.fold (fun low acc -> (high, low) :: acc) lows acc)
    t.before []
  |> List.rev

(* Drop every pair mentioning [name]; used when a rule is dropped. *)
let remove_rule t name =
  let before =
    Str_map.filter_map
      (fun high lows ->
        if String.equal high name then None
        else
          let lows = Str_set.remove name lows in
          if Str_set.is_empty lows then None else Some lows)
      t.before
  in
  { before }

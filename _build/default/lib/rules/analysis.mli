(** Static rule analysis (paper Section 6): the may-trigger graph over
    a rule set, potential-infinite-loop warnings (cycles, including
    self-loops like Example 4.1), and order-dependence warnings (rule
    pairs unordered by priorities whose execution order can change the
    final state).

    The analysis is conservative and syntactic: it over-approximates
    both triggering and data access, so absence of a warning is
    meaningful while presence is only a "may". *)

module Ast = Sqlf.Ast

type edge = { from_rule : string; to_rule : string }
type conflict = { rule1 : string; rule2 : string }

type report = {
  graph : edge list;  (** may-trigger edges *)
  potential_loops : string list list;
      (** elementary cycles, each [r1; ...; rk] meaning
          [r1 -> ... -> rk -> r1] *)
  order_conflicts : conflict list;
      (** unordered pairs with intersecting write/read footprints *)
}

val may_trigger : Rule.t -> Rule.t -> bool
(** Some write of the first rule's action satisfies some basic
    transition predicate of the second.  [call] actions are treated as
    writing anything. *)

val triggering_graph : Rule.t list -> edge list
val cycles : Rule.t list -> string list list

val analyze : ?priorities:Priority.t -> Rule.t list -> report
val pp_report : Format.formatter -> report -> unit

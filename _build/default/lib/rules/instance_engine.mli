(** An instance-oriented (tuple-at-a-time) trigger engine: the baseline
    the paper argues against (Section 1), in the style of
    [Esw76]/[SJGP90]/[Coh89].

    It accepts the same rule definitions as the set-oriented engine but
    applies each rule once per affected tuple, immediately after the
    operation producing it, depth-first.  When a rule fires for a
    tuple, its transition tables contain exactly that one tuple.

    This engine exists to make the paper's efficiency claim measurable
    (benchmark E2) and to let tests contrast the two semantics; it is
    intentionally faithful to the per-row style, including its
    inability to express conditions over the whole set of changes. *)

open Relational
module Ast = Sqlf.Ast
module Eval = Sqlf.Eval

type config = { max_steps : int }

val default_config : config

type stats = {
  mutable rule_firings : int;
  mutable conditions_evaluated : int;
}

type t
type outcome = Committed | Rolled_back

val create : ?config:config -> Database.t -> t
val database : t -> Database.t
val stats : t -> stats
val create_rule : t -> Ast.rule_def -> Rule.t
val create_table : t -> Schema.table -> unit

val execute_block : t -> Ast.op list -> outcome
(** Execute a block with immediate per-row trigger processing; a
    [rollback] action (or the step-limit guard) restores the block's
    start state. *)

val query : t -> Ast.select -> Eval.relation

(* Table schemas: fixed, named, typed columns (paper Section 2).  The
   storage layer enforces arity and type compatibility only; key and
   referential constraints are the business of production rules (that
   is the paper's point), via the constraint compiler. *)

type col_type = T_int | T_float | T_string | T_bool

type column = {
  col_name : string;
  col_type : col_type;
  not_null : bool;
  default : Value.t option;
}

type table = { table_name : string; columns : column array }

let col_type_name = function
  | T_int -> "INT"
  | T_float -> "FLOAT"
  | T_string -> "STRING"
  | T_bool -> "BOOL"

let column ?(not_null = false) ?default col_name col_type =
  { col_name; col_type; not_null; default }

let table table_name columns =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.col_name then
        Errors.semantic "duplicate column %S in table %S" c.col_name table_name;
      Hashtbl.add seen c.col_name ())
    columns;
  if columns = [] then Errors.semantic "table %S has no columns" table_name;
  { table_name; columns = Array.of_list columns }

let arity t = Array.length t.columns
let column_names t = Array.to_list (Array.map (fun c -> c.col_name) t.columns)

let find_column t name =
  let rec go i =
    if i >= Array.length t.columns then None
    else if String.equal t.columns.(i).col_name name then Some i
    else go (i + 1)
  in
  go 0

let column_index t name =
  match find_column t name with
  | Some i -> i
  | None ->
    Errors.raise_error
      (Errors.Unknown_column { table = Some t.table_name; column = name })

let has_column t name = Option.is_some (find_column t name)

(* Check a value against a column type, coercing int literals into
   float columns.  NULL is accepted unless the column is NOT NULL. *)
let coerce_value ~table_name col v =
  match v, col.col_type with
  | Value.Null, _ ->
    if col.not_null then
      Errors.raise_error
        (Errors.Not_null_violation { table = table_name; column = col.col_name })
    else Value.Null
  | Value.Int _, T_int -> v
  | Value.Int x, T_float -> Value.Float (float_of_int x)
  | Value.Float _, T_float -> v
  | Value.Str _, T_string -> v
  | Value.Bool _, T_bool -> v
  | v, ty ->
    Errors.type_error "value %s does not fit column %S of type %s"
      (Value.to_string v) col.col_name (col_type_name ty)

(* Validate and coerce a full row for the table. *)
let coerce_row t values =
  let n = Array.length values in
  if n <> arity t then
    Errors.raise_error
      (Errors.Arity_error { table = t.table_name; expected = arity t; got = n });
  Array.mapi (fun i v -> coerce_value ~table_name:t.table_name t.columns.(i) v) values

let pp_column ppf c =
  Fmt.pf ppf "%s %s%s" c.col_name
    (col_type_name c.col_type)
    (if c.not_null then " NOT NULL" else "")

let pp ppf t =
  Fmt.pf ppf "@[<hv 2>%s(%a)@]" t.table_name
    (Fmt.array ~sep:Fmt.comma pp_column)
    t.columns

(* A stored table: a schema plus a multiset of rows keyed by tuple
   handle.  Duplicate rows may appear (each under its own handle).  The
   representation is persistent, so snapshotting a table (and hence a
   whole database state) is O(1) — this is what makes the paper's
   pre-transition states and rollback cheap to support faithfully. *)

module Int_map = Map.Make (Int)

type t = { schema : Schema.table; rows : (Handle.t * Row.t) Int_map.t }

let create schema = { schema; rows = Int_map.empty }
let schema t = t.schema
let name t = t.schema.Schema.table_name
let cardinality t = Int_map.cardinal t.rows
let is_empty t = Int_map.is_empty t.rows

(* Insert a row under a fresh handle created by the caller.  The row
   must already be validated/coerced against the schema. *)
let insert t handle row =
  assert (String.equal (Handle.table handle) (name t));
  assert (not (Int_map.mem (Handle.id handle) t.rows));
  { t with rows = Int_map.add (Handle.id handle) (handle, row) t.rows }

let mem t handle = Int_map.mem (Handle.id handle) t.rows

let find t handle =
  Option.map snd (Int_map.find_opt (Handle.id handle) t.rows)

let get t handle =
  match find t handle with
  | Some row -> row
  | None ->
    Errors.semantic "tuple %s not present in table %S" (Fmt.str "%a" Handle.pp handle)
      (name t)

let delete t handle = { t with rows = Int_map.remove (Handle.id handle) t.rows }

let update t handle row =
  assert (Int_map.mem (Handle.id handle) t.rows);
  { t with rows = Int_map.add (Handle.id handle) (handle, row) t.rows }

(* Enumeration is in handle order, i.e. insertion order, which keeps
   scans and query results deterministic. *)
let fold f t acc =
  Int_map.fold (fun _ (h, row) acc -> f h row acc) t.rows acc

let iter f t = Int_map.iter (fun _ (h, row) -> f h row) t.rows
let to_list t = List.rev (fold (fun h row acc -> (h, row) :: acc) t [])
let rows t = List.rev (fold (fun _ row acc -> row :: acc) t [])

let pp ppf t =
  Fmt.pf ppf "@[<v 2>%a [%d rows]@,%a@]" Schema.pp t.schema (cardinality t)
    (Fmt.list ~sep:Fmt.cut (fun ppf (h, row) ->
         Fmt.pf ppf "%a %a" Handle.pp h Row.pp row))
    (to_list t)

lib/relational/schema.ml: Array Errors Fmt Hashtbl List Option String Value

lib/relational/database.ml: Errors Fmt Handle List Map Schema String Table

lib/relational/handle.ml: Fmt Map Set

lib/relational/table.ml: Errors Fmt Handle Int List Map Option Row Schema String

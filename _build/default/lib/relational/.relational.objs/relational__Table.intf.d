lib/relational/table.mli: Format Handle Row Schema

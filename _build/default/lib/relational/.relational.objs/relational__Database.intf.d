lib/relational/database.mli: Format Handle Row Schema Table

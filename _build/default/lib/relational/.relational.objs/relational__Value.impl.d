lib/relational/value.ml: Bool Errors Float Fmt Hashtbl Printf String

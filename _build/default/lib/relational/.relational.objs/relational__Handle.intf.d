lib/relational/handle.mli: Format Map Set

(** System tuple handles (paper Section 2): distinct, non-reusable
    values identifying a tuple and its containing table.

    Handles of deleted tuples remain valid identifiers of tuples that
    existed in a previous database state — transition effects and
    transition information rely on this. *)

type t

val fresh : string -> t
(** [fresh table] mints a new handle for a tuple of [table].  Handles
    are globally unique for the lifetime of the process and never
    reused. *)

val id : t -> int
val table : t -> string
(** The name of the table the handle's tuple belongs (or belonged) to. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Handle order is creation (insertion) order. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

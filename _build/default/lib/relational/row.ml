(* A row is an array of values, positionally matching a table schema.
   Rows are treated as immutable: every mutation in the storage layer
   copies. *)

type t = Value.t array

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
  in
  go 0

(* Total order used for deterministic output and DISTINCT. *)
let compare_total a b =
  let n = Array.length a and m = Array.length b in
  let rec go i =
    if i >= n && i >= m then 0
    else if i >= n then -1
    else if i >= m then 1
    else
      match Value.compare_total a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let project indices row = Array.map (fun i -> row.(i)) indices

let set row i v =
  let row' = Array.copy row in
  row'.(i) <- v;
  row'

let pp ppf row =
  Fmt.pf ppf "(@[%a@])" (Fmt.array ~sep:Fmt.comma Value.pp) row

let to_string row = Fmt.str "%a" pp row

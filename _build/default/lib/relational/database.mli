(** A database state: a catalog of tables.

    States are persistent values.  The engine keeps the current state
    in a reference and passes old states around freely — pre-transition
    states for transition tables, and the transaction start state for
    rollback — exactly as the paper's semantics requires. *)

type t

val empty : t

val create_table : t -> Schema.table -> t
(** Raises [Duplicate_table] if a table of that name exists. *)

val drop_table : t -> string -> t
val has_table : t -> string -> bool

val table : t -> string -> Table.t
(** Raises [Unknown_table] if absent. *)

val schema : t -> string -> Schema.table
val table_names : t -> string list
val replace_table : t -> Table.t -> t

val insert : t -> string -> Row.t -> t * Handle.t
(** Validate/coerce the row against the schema, mint a fresh handle,
    and store the tuple.  Returns the new state and the handle. *)

val delete : t -> Handle.t -> t
val update : t -> Handle.t -> Row.t -> t

val find_row : t -> Handle.t -> Row.t option
(** Look a tuple up in this state — works for current values and for
    values in retained pre-transition states. *)

val get_row : t -> Handle.t -> Row.t
(** Like {!find_row} but raises when absent. *)

val total_rows : t -> int
val pp : Format.formatter -> t -> unit

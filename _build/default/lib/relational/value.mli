(** SQL values and three-valued logic.

    Comparisons involving {!Null} are UNKNOWN rather than false;
    {!truth} is the three-valued truth domain, and predicate evaluation
    in the SQL layer selects a row only when the predicate is
    definitely {!True} (via {!truth_holds}). *)

type t = Null | Int of int | Float of float | Str of string | Bool of bool

(** SQL truth values. *)
type truth = True | False | Unknown

val is_null : t -> bool

val truth_of_bool : bool -> truth
val truth_and : truth -> truth -> truth
val truth_or : truth -> truth -> truth
val truth_not : truth -> truth

val truth_holds : truth -> bool
(** [truth_holds t] is [true] only for {!True}: SQL collapses UNKNOWN
    to "not selected". *)

val equal : t -> t -> bool
(** Structural equality used by storage and tests; unlike SQL
    comparison, [equal Null Null = true].  Numeric values compare
    across int/float. *)

val type_name : t -> string

val compare_sql : t -> t -> int option
(** SQL comparison: [None] when either side is NULL.  Comparing
    incompatible types (e.g. a string with an int) is a type error. *)

val eq_sql : t -> t -> truth
(** Three-valued equality. *)

val compare_total : t -> t -> int
(** A total order used for ORDER BY, DISTINCT, GROUP BY keys and
    deterministic output: NULL first, then booleans, numbers, strings. *)

(** {2 Operators}

    Arithmetic and string operators propagate NULL ([x + NULL = NULL]);
    applying an operator to incompatible types, or dividing by zero, is
    a type error. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val neg : t -> t
val concat : t -> t -> t

val like : t -> t -> truth
(** SQL [LIKE] with ['%'] (any sequence) and ['_'] (any single
    character); UNKNOWN if either operand is NULL. *)

val like_match : string -> string -> bool
(** The underlying pattern matcher, exposed for tests. *)

val to_float : t -> float option
(** Numeric view of a value, for aggregates. *)

val to_string : t -> string
(** SQL-literal rendering (strings quoted, NULL as [NULL]); numeric
    output parses back to an equal value. *)

val to_display : t -> string
(** Rendering for result tables: like {!to_string} but strings are
    unquoted. *)

val pp : Format.formatter -> t -> unit

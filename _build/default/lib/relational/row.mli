(** Rows: arrays of values positionally matching a table schema.
    Treated as immutable — every mutation in the storage layer copies. *)

type t = Value.t array

val equal : t -> t -> bool
(** Pointwise {!Value.equal}. *)

val compare_total : t -> t -> int
(** Lexicographic {!Value.compare_total}; used for DISTINCT, GROUP BY
    keys and deterministic ordering. *)

val project : int array -> t -> t
(** [project indices row] extracts the given positions. *)

val set : t -> int -> Value.t -> t
(** Functional update (copies). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

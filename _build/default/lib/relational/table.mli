(** A stored table: a schema plus a multiset of rows keyed by tuple
    handle.

    The representation is persistent: every mutation returns a new
    table sharing structure with the old one.  Snapshotting a table —
    and hence a whole database state — is O(1), which is what makes the
    paper's pre-transition states and rollback cheap to support
    faithfully.  Duplicate rows may appear, each under its own
    handle. *)

type t

val create : Schema.table -> t
val schema : t -> Schema.table
val name : t -> string
val cardinality : t -> int
val is_empty : t -> bool

val insert : t -> Handle.t -> Row.t -> t
(** [insert t h row] stores [row] under [h].  The handle must be fresh
    and belong to this table; the row must already be coerced against
    the schema. *)

val mem : t -> Handle.t -> bool
val find : t -> Handle.t -> Row.t option
val get : t -> Handle.t -> Row.t
(** Raises if the tuple is not present in this state. *)

val delete : t -> Handle.t -> t
val update : t -> Handle.t -> Row.t -> t

val fold : (Handle.t -> Row.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Enumeration is in handle (= insertion) order, keeping scans and
    query results deterministic. *)

val iter : (Handle.t -> Row.t -> unit) -> t -> unit
val to_list : t -> (Handle.t * Row.t) list
val rows : t -> Row.t list
val pp : Format.formatter -> t -> unit

bench/bench_support.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf String Test Time Toolkit

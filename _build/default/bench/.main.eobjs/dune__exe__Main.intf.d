bench/main.mli:

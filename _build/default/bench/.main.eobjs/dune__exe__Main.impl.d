bench/main.ml: Array Ast Bechamel Bench_support Core Database Effect Engine Eval Handle Instance_engine List Parser Printf Rules Schema Selection Staged String Sys System Test Trans_info Value
